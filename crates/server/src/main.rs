//! `dogmatixd` binary: boot the resident dedup server over one corpus.

use dogmatix_core::probe::ProbeBlocking;
use dogmatix_core::{Dogmatix, Mapping};
use dogmatix_server::{serve, ServerConfig};
use dogmatix_xml::Document;
use std::io::Write as _;
use std::process::ExitCode;
use std::time::Duration;

const HELP: &str = "dogmatixd — resident DogmatiX dedup server

USAGE:
    dogmatixd <doc.xml> <mapping.txt> <rw_type> [OPTIONS]

OPTIONS:
    --addr <host:port>        bind address (default 127.0.0.1:0, ephemeral)
    --workers <n>             probe worker threads (default 4)
    --ingest-queue <n>        bounded ingest queue depth (default 64)
    --read-timeout-ms <n>     idle-connection timeout (default 30000)
    --max-line-bytes <n>      request size cap (default 1048576)
    --help                    print this help

On startup the server prints one line to stdout:
    dogmatixd listening on <addr>
then serves the newline-delimited protocol (PROBE / INGEST / STATS /
SHUTDOWN) until a client sends SHUTDOWN.";

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("dogmatixd: {message}");
            ExitCode::FAILURE
        }
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{HELP}");
        return Ok(());
    }
    let mut positional: Vec<&str> = Vec::new();
    let mut config = ServerConfig::default();
    let mut i = 0;
    while i < args.len() {
        let arg = args[i].as_str();
        let mut flag_value = |name: &str| -> Result<String, String> {
            i += 1;
            args.get(i)
                .cloned()
                .ok_or_else(|| format!("{name} needs a value (see --help)"))
        };
        match arg {
            "--addr" => config.addr = flag_value("--addr")?,
            "--workers" => config.workers = parse_num(&flag_value("--workers")?, "--workers")?,
            "--ingest-queue" => {
                config.ingest_queue = parse_num(&flag_value("--ingest-queue")?, "--ingest-queue")?;
            }
            "--read-timeout-ms" => {
                config.read_timeout = Duration::from_millis(parse_num(
                    &flag_value("--read-timeout-ms")?,
                    "--read-timeout-ms",
                )? as u64);
            }
            "--max-line-bytes" => {
                config.max_line_bytes =
                    parse_num(&flag_value("--max-line-bytes")?, "--max-line-bytes")?;
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag '{other}' (see --help)"));
            }
            _ => positional.push(arg),
        }
        i += 1;
    }
    let [doc_path, mapping_path, rw_type] = positional[..] else {
        return Err("expected <doc.xml> <mapping.txt> <rw_type> (see --help)".to_string());
    };

    let xml = std::fs::read_to_string(doc_path)
        .map_err(|e| format!("cannot read document {doc_path}: {e}"))?;
    let doc = Document::parse(&xml).map_err(|e| format!("{doc_path}: {e}"))?;
    let mapping_text = std::fs::read_to_string(mapping_path)
        .map_err(|e| format!("cannot read mapping {mapping_path}: {e}"))?;
    let mapping = Mapping::parse(&mapping_text).map_err(|e| format!("{mapping_path}: {e}"))?;

    let dx = Dogmatix::builder().mapping(mapping).build();
    let session = dx
        .incremental_session_inferred(doc, rw_type)
        .map_err(|e| e.to_string())?;
    config.blocking = ProbeBlocking::default();
    let handle = serve(dx, session, config).map_err(|e| e.to_string())?;

    // Parseable startup line (flushed — stdout may be a pipe).
    let mut out = std::io::stdout();
    let _ = writeln!(out, "dogmatixd listening on {}", handle.addr());
    let _ = out.flush();

    handle.join();
    Ok(())
}

fn parse_num(value: &str, flag: &str) -> Result<usize, String> {
    value
        .parse()
        .map_err(|_| format!("{flag} needs an unsigned number, got '{value}'"))
}
