//! Cheap lower bounds on the Levenshtein distance.
//!
//! The paper (Section 5.1) cites \[18\] (Weis & Naumann, IQIS 2004) for "a
//! simple combination of upper and lower edit distance bounds to
//! substantially reduce the number of pairwise comparisons". Two classic
//! lower bounds are implemented here:
//!
//! * **length bound** — `| |a| − |b| |`: every edit changes the length by at
//!   most one;
//! * **bag distance** — the multiset (bag) difference of characters,
//!   ⌈max(|A∖B|, |B∖A|)⌉, which ignores character order and is computable in
//!   linear time.
//!
//! Both never exceed the true edit distance, so a pair can be discarded
//! whenever a bound already exceeds the admissible maximum.

use std::collections::HashMap;

/// Lower bound from the length difference: `| la − lb |`.
///
/// Lengths are in Unicode scalar values; callers typically have them cached.
#[inline]
pub fn length_lower_bound(la: usize, lb: usize) -> usize {
    la.abs_diff(lb)
}

/// Reusable scratch for [`bag_distance_lower_bound_with`]: the non-ASCII
/// path needs a character→count table, and allocating a fresh `HashMap`
/// per call would dominate the bound itself on the batch hot path. One
/// scratch per worker (it lives inside
/// [`crate::kernel::KernelScratch`]) amortises it to zero allocations.
#[derive(Debug, Default)]
pub struct BoundsScratch {
    /// Signed multiset counts (`+1` per char of `a`, `−1` per char of `b`).
    counts: HashMap<char, isize>,
}

impl BoundsScratch {
    /// Creates an empty scratch table.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Bag-distance lower bound on the Levenshtein distance.
///
/// Treats both strings as multisets of characters and returns
/// `max(|A ∖ B|, |B ∖ A|)` where `∖` is multiset difference. Runs in
/// `O(|a| + |b|)`.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{bag_distance_lower_bound, levenshtein};
/// let (a, b) = ("hello world", "world hello");
/// let bag = bag_distance_lower_bound(a, b);
/// assert!(bag <= levenshtein(a, b));
/// assert_eq!(bag_distance_lower_bound("aab", "ab"), 1);
/// ```
pub fn bag_distance_lower_bound(a: &str, b: &str) -> usize {
    // Fast path: pure-ASCII inputs use a stack-allocated count table —
    // this function runs tens of millions of times inside the filter's
    // term-family scan, where a per-call HashMap would dominate.
    if a.is_ascii() && b.is_ascii() {
        return bag_distance_ascii(a, b);
    }
    crate::kernel::with_thread_scratch(|s| bag_distance_unicode(a, b, &mut s.bounds))
}

/// [`bag_distance_lower_bound`] with a caller-owned scratch table, for
/// batch loops that hold a [`crate::kernel::KernelScratch`] and must not
/// touch the thread-local one.
pub fn bag_distance_lower_bound_with(a: &str, b: &str, scratch: &mut BoundsScratch) -> usize {
    if a.is_ascii() && b.is_ascii() {
        return bag_distance_ascii(a, b);
    }
    bag_distance_unicode(a, b, scratch)
}

/// ASCII path: a 128-slot stack table, no heap at all.
fn bag_distance_ascii(a: &str, b: &str) -> usize {
    let mut counts = [0i32; 128];
    for &c in a.as_bytes() {
        counts[c as usize] += 1;
    }
    for &c in b.as_bytes() {
        counts[c as usize] -= 1;
    }
    let mut a_only = 0usize;
    let mut b_only = 0usize;
    for v in counts {
        if v > 0 {
            a_only += v as usize;
        } else {
            b_only += (-v) as usize;
        }
    }
    a_only.max(b_only)
}

/// General path: reuses the scratch `HashMap` across calls.
fn bag_distance_unicode(a: &str, b: &str, scratch: &mut BoundsScratch) -> usize {
    let counts = &mut scratch.counts;
    counts.clear();
    for c in a.chars() {
        *counts.entry(c).or_insert(0) += 1;
    }
    for c in b.chars() {
        *counts.entry(c).or_insert(0) -= 1;
    }
    let mut a_only = 0usize;
    let mut b_only = 0usize;
    for v in counts.values() {
        if *v > 0 {
            a_only += *v as usize;
        } else {
            b_only += (-*v) as usize;
        }
    }
    a_only.max(b_only)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::levenshtein;

    #[test]
    fn length_bound_basic() {
        assert_eq!(length_lower_bound(3, 7), 4);
        assert_eq!(length_lower_bound(7, 3), 4);
        assert_eq!(length_lower_bound(5, 5), 0);
    }

    #[test]
    fn bag_distance_is_lower_bound() {
        let words = [
            "",
            "a",
            "ab",
            "ba",
            "abc",
            "cba",
            "kitten",
            "sitting",
            "The Matrix",
            "Matrix",
            "disc 01",
            "disc 10",
        ];
        for a in words {
            for b in words {
                let bag = bag_distance_lower_bound(a, b);
                let lev = levenshtein(a, b);
                assert!(bag <= lev, "bag({a:?},{b:?})={bag} > lev={lev}");
            }
        }
    }

    #[test]
    fn bag_distance_ignores_order() {
        assert_eq!(bag_distance_lower_bound("abc", "cab"), 0);
        assert_eq!(bag_distance_lower_bound("listen", "silent"), 0);
    }

    #[test]
    fn bag_distance_counts_multiplicity() {
        assert_eq!(bag_distance_lower_bound("aaa", "a"), 2);
        assert_eq!(bag_distance_lower_bound("aabbb", "ab"), 3);
    }

    #[test]
    fn bag_distance_symmetric() {
        assert_eq!(
            bag_distance_lower_bound("xyz", "xxyy"),
            bag_distance_lower_bound("xxyy", "xyz")
        );
    }

    #[test]
    fn scratch_variant_matches_and_reuses_across_calls() {
        let mut scratch = BoundsScratch::new();
        let pairs = [
            ("naïve café", "naive cafe"),
            ("日本語", "日本"),
            ("ααββ", "αβ"),
            ("plain ascii", "ascii plain"),
        ];
        for (a, b) in pairs {
            assert_eq!(
                bag_distance_lower_bound_with(a, b, &mut scratch),
                bag_distance_lower_bound(a, b),
                "{a:?} vs {b:?}"
            );
            // A second call on the same scratch must not see stale counts.
            assert_eq!(
                bag_distance_lower_bound_with(a, b, &mut scratch),
                bag_distance_lower_bound(a, b)
            );
        }
    }

    #[test]
    fn length_bound_is_lower_bound() {
        let words = ["", "ab", "abcdef", "x"];
        for a in words {
            for b in words {
                let lb = length_lower_bound(a.chars().count(), b.chars().count());
                assert!(lb <= levenshtein(a, b));
            }
        }
    }
}
