//! Inverse document frequency helpers (Definition 8 of the paper).
//!
//! The paper weighs the relevance of OD tuples with a variant of the
//! inverse document frequency it calls `softIDF`: if `D` is the complete
//! set of objects and `n` the number of objects a term occurs in, then
//! `IDF = log(|D| / n)`. `softIDF` extends this to *pairs* of similar terms
//! by setting `n = |O_odt1 ∪ O_odt2|`, the number of objects containing
//! either term.
//!
//! The generic arithmetic lives here; the bookkeeping of which objects
//! contain which OD tuple lives in `dogmatix-core`, which owns the inverted
//! index.

/// `IDF = ln(total / containing)`.
///
/// Returns 0 when `containing >= total` (a term present everywhere has no
/// identifying power) and 0 when either argument is 0 (no evidence).
///
/// # Examples
/// ```
/// use dogmatix_textsim::idf;
/// assert_eq!(idf(100, 100), 0.0);
/// assert!(idf(100, 1) > idf(100, 50));
/// assert_eq!(idf(0, 0), 0.0);
/// ```
#[inline]
pub fn idf(total: usize, containing: usize) -> f64 {
    if total == 0 || containing == 0 || containing >= total {
        return 0.0;
    }
    (total as f64 / containing as f64).ln()
}

/// `softIDF` of a pair of similar terms: `ln(|Ω| / |O_1 ∪ O_2|)`.
///
/// `union_count` must be the number of distinct objects containing either
/// term (Definition 8). Semantics otherwise match [`idf`].
///
/// # Examples
/// ```
/// use dogmatix_textsim::{idf, soft_idf};
/// // A pair occurring together in few objects is highly identifying.
/// assert!(soft_idf(1000, 2) > soft_idf(1000, 200));
/// // With a single term the union degenerates to plain IDF.
/// assert_eq!(soft_idf(1000, 5), idf(1000, 5));
/// ```
#[inline]
pub fn soft_idf(total: usize, union_count: usize) -> f64 {
    idf(total, union_count)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idf_monotone_decreasing_in_frequency() {
        let total = 500;
        let mut prev = f64::INFINITY;
        for n in 1..total {
            let v = idf(total, n);
            assert!(v <= prev, "idf not monotone at n={n}");
            prev = v;
        }
    }

    #[test]
    fn idf_never_negative() {
        for total in [0usize, 1, 10, 500] {
            for n in 0..=total + 5 {
                assert!(idf(total, n) >= 0.0);
            }
        }
    }

    #[test]
    fn ubiquitous_term_has_zero_idf() {
        assert_eq!(idf(500, 500), 0.0);
        assert_eq!(idf(500, 600), 0.0);
    }

    #[test]
    fn rare_term_beats_common_term() {
        assert!(idf(1000, 1) > idf(1000, 999));
    }

    #[test]
    fn soft_idf_matches_paper_formula() {
        // log(|Ω| / |union|) with natural log.
        let v = soft_idf(1000, 4);
        assert!((v - (250.0f64).ln()).abs() < 1e-12);
    }
}
