//! Token-set similarities (Jaccard, overlap coefficient).
//!
//! Used by the ablation benchmarks as cheap alternatives to the paper's
//! edit-distance-based `odtDist`, and by the data generator's sanity checks.

use std::collections::HashSet;

/// Jaccard similarity of the word-token sets of `a` and `b`:
/// `|A ∩ B| / |A ∪ B|`. Two empty strings are identical (1.0).
///
/// # Examples
/// ```
/// use dogmatix_textsim::jaccard_tokens;
/// assert_eq!(jaccard_tokens("the matrix", "matrix the"), 1.0);
/// assert_eq!(jaccard_tokens("abc", "xyz"), 0.0);
/// assert!((jaccard_tokens("a b c", "a b d") - 0.5).abs() < 1e-12);
/// ```
pub fn jaccard_tokens(a: &str, b: &str) -> f64 {
    let sa: HashSet<&str> = a.split_whitespace().collect();
    let sb: HashSet<&str> = b.split_whitespace().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    let inter = sa.intersection(&sb).count();
    let union = sa.union(&sb).count();
    inter as f64 / union as f64
}

/// Overlap coefficient of the word-token sets: `|A ∩ B| / min(|A|, |B|)`.
///
/// An asymmetry-tolerant containment measure in the spirit of DELPHI's
/// containment metric (Related Work, Section 7.2). Two empty strings are
/// identical (1.0); if exactly one side is empty the overlap is 0.
///
/// # Examples
/// ```
/// use dogmatix_textsim::overlap_coefficient;
/// assert_eq!(overlap_coefficient("the matrix", "the matrix reloaded"), 1.0);
/// assert_eq!(overlap_coefficient("", "x"), 0.0);
/// ```
pub fn overlap_coefficient(a: &str, b: &str) -> f64 {
    let sa: HashSet<&str> = a.split_whitespace().collect();
    let sb: HashSet<&str> = b.split_whitespace().collect();
    if sa.is_empty() && sb.is_empty() {
        return 1.0;
    }
    if sa.is_empty() || sb.is_empty() {
        return 0.0;
    }
    let inter = sa.intersection(&sb).count();
    inter as f64 / sa.len().min(sb.len()) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_bounds() {
        let texts = ["", "a", "a b", "a b c", "x y z"];
        for a in texts {
            for b in texts {
                let v = jaccard_tokens(a, b);
                assert!((0.0..=1.0).contains(&v));
                assert_eq!(v, jaccard_tokens(b, a));
            }
        }
    }

    #[test]
    fn jaccard_order_insensitive() {
        assert_eq!(jaccard_tokens("new york city", "city new york"), 1.0);
    }

    #[test]
    fn overlap_rewards_containment() {
        assert_eq!(overlap_coefficient("a b", "a b c d"), 1.0);
        assert!(jaccard_tokens("a b", "a b c d") < 1.0);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(jaccard_tokens("", ""), 1.0);
        assert_eq!(jaccard_tokens("", "a"), 0.0);
        assert_eq!(overlap_coefficient("", ""), 1.0);
        assert_eq!(overlap_coefficient("a", ""), 0.0);
    }
}
