//! Jaro and Jaro-Winkler similarity.
//!
//! Not used by the core DogmatiX measure (which is edit-distance based per
//! Definition 7), but provided as an alternative value-similarity for the
//! ablation experiments: the paper's outlook (Section 8) proposes comparing
//! the measure against other string similarities.

/// Jaro similarity in `[0, 1]`; 1 means identical.
///
/// # Examples
/// ```
/// use dogmatix_textsim::jaro;
/// assert_eq!(jaro("abc", "abc"), 1.0);
/// assert_eq!(jaro("abc", "xyz"), 0.0);
/// assert!((jaro("MARTHA", "MARHTA") - 0.944444).abs() < 1e-5);
/// ```
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches.push(ca);
                break;
            }
        }
    }
    let m = matches.len();
    if m == 0 {
        return 0.0;
    }
    // Count transpositions: compare matched sequences in order.
    let b_matches: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter_map(|(&c, &u)| u.then_some(c))
        .collect();
    let t = matches
        .iter()
        .zip(b_matches.iter())
        .filter(|(x, y)| x != y)
        .count() as f64
        / 2.0;
    let m = m as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - t) / m) / 3.0
}

/// Jaro-Winkler similarity with the standard prefix scale of 0.1 and a
/// maximum prefix length of 4.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{jaro, jaro_winkler};
/// // Shared prefixes are rewarded.
/// assert!(jaro_winkler("MARTHA", "MARHTA") >= jaro("MARTHA", "MARHTA"));
/// assert_eq!(jaro_winkler("", ""), 1.0);
/// ```
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    const PREFIX_SCALE: f64 = 0.1;
    const MAX_PREFIX: usize = 4;
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(MAX_PREFIX)
        .take_while(|(x, y)| x == y)
        .count();
    j + prefix as f64 * PREFIX_SCALE * (1.0 - j)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings() {
        assert_eq!(jaro("same", "same"), 1.0);
        assert_eq!(jaro_winkler("same", "same"), 1.0);
    }

    #[test]
    fn disjoint_strings() {
        assert_eq!(jaro("aaa", "bbb"), 0.0);
        assert_eq!(jaro_winkler("aaa", "bbb"), 0.0);
    }

    #[test]
    fn known_reference_values() {
        assert!((jaro("DIXON", "DICKSONX") - 0.766667).abs() < 1e-5);
        assert!((jaro_winkler("DIXON", "DICKSONX") - 0.813333).abs() < 1e-5);
        assert!((jaro_winkler("MARTHA", "MARHTA") - 0.961111).abs() < 1e-5);
    }

    #[test]
    fn bounded_in_unit_interval() {
        let words = ["", "a", "ab", "The Matrix", "Matrix", "xyz"];
        for a in words {
            for b in words {
                for v in [jaro(a, b), jaro_winkler(a, b)] {
                    assert!((0.0..=1.0 + 1e-12).contains(&v), "{a:?},{b:?} -> {v}");
                }
            }
        }
    }

    #[test]
    fn symmetric() {
        assert_eq!(jaro("abcd", "abdc"), jaro("abdc", "abcd"));
        assert_eq!(
            jaro_winkler("crate", "trace"),
            jaro_winkler("trace", "crate")
        );
    }
}
