//! Pluggable edit-distance kernels.
//!
//! The comparison phase spends its time computing bounded Levenshtein
//! distances between normalised term values. This module puts that
//! computation behind one seam — [`EditDistanceKernel`] — so the scalar
//! banded DP ([`ScalarKernel`]), Myers' bit-parallel algorithm
//! ([`BitParallelKernel`], the default) and future wide implementations
//! (a GPU-shaped batch kernel) are swappable without touching callers.
//!
//! Every kernel is **exact**: for the same inputs all kernels return the
//! same integer distance as the scalar dynamic program, so swapping
//! kernels never changes detection output — only wall-clock time.
//!
//! The batch shape mirrors how the scoring loop consumes distances: one
//! *pattern* (the left term of a posting group) is prepared once via
//! [`EditDistanceKernel::prepare`], then compared against many *texts*
//! via [`EditDistanceKernel::bounded_prepared`]. All working state lives
//! in a caller-owned [`KernelScratch`], so a resident scratch (one per
//! worker) amortises every allocation to zero on the hot path.
//!
//! # Examples
//! ```
//! use dogmatix_textsim::kernel::{
//!     BitParallelKernel, EditDistanceKernel, KernelScratch, ScalarKernel,
//! };
//!
//! let mut scratch = KernelScratch::new();
//! let kernel = BitParallelKernel;
//! // Prepare "kitten" once, probe it against a whole posting group.
//! kernel.prepare(&mut scratch, "kitten", 6);
//! assert_eq!(kernel.bounded_prepared(&mut scratch, "sitting", 7, 3), Some(3));
//! assert_eq!(kernel.bounded_prepared(&mut scratch, "mitten", 6, 3), Some(1));
//! assert_eq!(kernel.bounded_prepared(&mut scratch, "sitting", 7, 2), None);
//! // Kernels are interchangeable and bit-identical.
//! assert_eq!(
//!     ScalarKernel.bounded(&mut scratch, "kitten", "sitting", 3),
//!     BitParallelKernel.bounded(&mut scratch, "kitten", "sitting", 3),
//! );
//! ```

use std::cell::RefCell;
use std::fmt;
use std::str::FromStr;

use crate::bounds::BoundsScratch;
use crate::levenshtein;
use crate::myers;

/// Reusable working state for every kernel: decoded pattern buffers,
/// the bit-parallel `Peq` table and column state, the scalar DP rows,
/// and the [`BoundsScratch`] shared with the lower-bound pruning.
///
/// One scratch per thread (or per worker) is enough; preparing a new
/// pattern resets exactly the state that pattern owns.
#[derive(Debug, Default)]
pub struct KernelScratch {
    /// `Peq` bitmasks of the prepared pattern (bit-parallel kernel).
    pub(crate) masks: myers::PatternMasks,
    /// Multi-block column state (VP words).
    pub(crate) vp: Vec<u64>,
    /// Multi-block column state (VN words).
    pub(crate) vn: Vec<u64>,
    /// Scalar-value length of the prepared pattern.
    pub(crate) pat_len: usize,
    /// Whether the prepared pattern is pure ASCII.
    pub(crate) pat_ascii: bool,
    /// Prepared pattern bytes (ASCII patterns, scalar kernel).
    pub(crate) pat_bytes: Vec<u8>,
    /// Prepared pattern decoded to chars (filled lazily when needed).
    pub(crate) pat_chars: Vec<char>,
    /// Whether `pat_chars` currently matches the prepared pattern.
    pub(crate) pat_chars_ready: bool,
    /// Decoded-text scratch for the scalar kernel's non-ASCII path.
    pub(crate) text_chars: Vec<char>,
    /// Scalar DP row (previous).
    pub(crate) prev_row: Vec<usize>,
    /// Scalar DP row (current).
    pub(crate) curr_row: Vec<usize>,
    /// Scratch table for [`crate::bounds::bag_distance_lower_bound_with`].
    pub bounds: BoundsScratch,
}

impl KernelScratch {
    /// Creates an empty scratch; buffers grow on first use and are
    /// reused afterwards.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records `pattern` for the scalar kernel: ASCII patterns keep a
    /// byte copy, others decode to chars on demand.
    pub(crate) fn set_scalar_pattern(&mut self, pattern: &str, pattern_chars: usize) {
        self.pat_len = pattern_chars;
        self.pat_ascii = pattern.is_ascii();
        self.pat_bytes.clear();
        self.pat_bytes.extend_from_slice(pattern.as_bytes());
        self.pat_chars_ready = false;
    }

    /// Ensures `pat_chars` holds the prepared pattern decoded to chars.
    pub(crate) fn ensure_pat_chars(&mut self) {
        if !self.pat_chars_ready {
            self.pat_chars.clear();
            // `pat_bytes` always holds the raw pattern bytes; for ASCII
            // patterns the bytes are the chars.
            if self.pat_ascii {
                self.pat_chars
                    .extend(self.pat_bytes.iter().map(|&b| b as char));
            } else if let Ok(s) = std::str::from_utf8(&self.pat_bytes) {
                self.pat_chars.extend(s.chars());
            }
            self.pat_chars_ready = true;
        }
    }
}

/// A bounded edit-distance implementation, swappable behind the
/// comparison phase.
///
/// The contract every implementation must uphold: `bounded*` returns
/// `Some(d)` iff the exact Levenshtein distance `d` (over Unicode
/// scalar values) satisfies `d <= max`, and `None` otherwise — the same
/// integers the scalar DP produces, so kernels are interchangeable
/// without changing any detection result.
///
/// The two-phase API ([`prepare`](Self::prepare) +
/// [`bounded_prepared`](Self::bounded_prepared)) lets batch callers pay
/// per-pattern preprocessing (e.g. the bit-parallel `Peq` masks) once
/// per posting group instead of once per pair. Character counts are
/// passed in because the store already has them as columns; wrappers
/// without cached counts use [`bounded`](Self::bounded).
///
/// # Examples
/// ```
/// use dogmatix_textsim::kernel::{EditDistanceKernel, KernelScratch, ScalarKernel};
/// let mut scratch = KernelScratch::new();
/// assert_eq!(ScalarKernel.name(), "scalar");
/// assert_eq!(ScalarKernel.bounded(&mut scratch, "Boston", "New York", 7), Some(7));
/// assert_eq!(ScalarKernel.bounded(&mut scratch, "Boston", "New York", 6), None);
/// ```
pub trait EditDistanceKernel: fmt::Debug + Send + Sync {
    /// Kernel name as used by `--edit-kernel` and diagnostics.
    fn name(&self) -> &'static str;

    /// Preprocesses `pattern` (`pattern_chars` scalar values) into
    /// `scratch` so that repeated [`bounded_prepared`](Self::bounded_prepared)
    /// calls against many texts amortise the per-pattern work.
    fn prepare(&self, scratch: &mut KernelScratch, pattern: &str, pattern_chars: usize);

    /// Bounded distance of the prepared pattern against `text`
    /// (`text_chars` scalar values): `Some(d)` iff `d <= max`.
    fn bounded_prepared(
        &self,
        scratch: &mut KernelScratch,
        text: &str,
        text_chars: usize,
        max: usize,
    ) -> Option<usize>;

    /// One-shot bounded distance with caller-cached character counts.
    fn bounded_counted(
        &self,
        scratch: &mut KernelScratch,
        a: &str,
        a_chars: usize,
        b: &str,
        b_chars: usize,
        max: usize,
    ) -> Option<usize> {
        let max = max.min(a_chars.max(b_chars));
        if a_chars.abs_diff(b_chars) > max {
            return None;
        }
        if a_chars == 0 || b_chars == 0 {
            return Some(a_chars.max(b_chars)); // within max by the length guard
        }
        self.prepare(scratch, a, a_chars);
        self.bounded_prepared(scratch, b, b_chars, max)
    }

    /// One-shot bounded distance; counts the characters itself.
    fn bounded(&self, scratch: &mut KernelScratch, a: &str, b: &str, max: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let a_chars = levenshtein::char_count(a);
        let b_chars = levenshtein::char_count(b);
        self.bounded_counted(scratch, a, a_chars, b, b_chars, max)
    }
}

/// The banded two-row scalar dynamic program (Ukkonen's band plus a
/// row-minimum early exit) — the reference kernel every other
/// implementation must match bit for bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScalarKernel;

impl EditDistanceKernel for ScalarKernel {
    fn name(&self) -> &'static str {
        "scalar"
    }

    fn prepare(&self, scratch: &mut KernelScratch, pattern: &str, pattern_chars: usize) {
        scratch.set_scalar_pattern(pattern, pattern_chars);
    }

    fn bounded_prepared(
        &self,
        scratch: &mut KernelScratch,
        text: &str,
        text_chars: usize,
        max: usize,
    ) -> Option<usize> {
        let m = scratch.pat_len;
        let max = max.min(m.max(text_chars));
        if m.abs_diff(text_chars) > max {
            return None;
        }
        if m == 0 || text_chars == 0 {
            return Some(m.max(text_chars));
        }
        if scratch.pat_ascii && text.is_ascii() {
            let (short, long) = if m <= text_chars {
                (scratch.pat_bytes.as_slice(), text.as_bytes())
            } else {
                (text.as_bytes(), scratch.pat_bytes.as_slice())
            };
            return levenshtein::banded(
                short,
                long,
                max,
                &mut scratch.prev_row,
                &mut scratch.curr_row,
            );
        }
        scratch.ensure_pat_chars();
        scratch.text_chars.clear();
        scratch.text_chars.extend(text.chars());
        let (short, long) = if m <= text_chars {
            (&scratch.pat_chars, &scratch.text_chars)
        } else {
            (&scratch.text_chars, &scratch.pat_chars)
        };
        levenshtein::banded(
            short,
            long,
            max,
            &mut scratch.prev_row,
            &mut scratch.curr_row,
        )
    }
}

/// Myers' bit-parallel kernel (see [`crate::myers`]): `O(⌈m/64⌉ · n)`
/// word operations per pair, with the pattern's `Peq` bitmask table
/// built once per [`prepare`](EditDistanceKernel::prepare). The default
/// kernel.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BitParallelKernel;

impl EditDistanceKernel for BitParallelKernel {
    fn name(&self) -> &'static str {
        "bitpar"
    }

    fn prepare(&self, scratch: &mut KernelScratch, pattern: &str, pattern_chars: usize) {
        scratch.pat_len = pattern_chars;
        if pattern_chars > 0 {
            scratch.masks.set_pattern(pattern, pattern_chars);
        }
    }

    fn bounded_prepared(
        &self,
        scratch: &mut KernelScratch,
        text: &str,
        text_chars: usize,
        max: usize,
    ) -> Option<usize> {
        let m = scratch.pat_len;
        let max = max.min(m.max(text_chars));
        if m.abs_diff(text_chars) > max {
            return None;
        }
        if m == 0 || text_chars == 0 {
            return Some(m.max(text_chars));
        }
        myers::bounded_prepared(
            &scratch.masks,
            text,
            text_chars,
            max,
            &mut scratch.vp,
            &mut scratch.vn,
        )
    }
}

/// Which [`EditDistanceKernel`] the pipeline should use; selected via
/// `Dogmatix::builder().edit_kernel(...)` or CLI `--edit-kernel`.
///
/// Kernels are exact, so the choice never changes detection results —
/// only throughput. [`EditKernelChoice::BitParallel`] is the default.
///
/// # Examples
/// ```
/// use dogmatix_textsim::kernel::EditKernelChoice;
/// assert_eq!("bitpar".parse(), Ok(EditKernelChoice::BitParallel));
/// assert_eq!("scalar".parse(), Ok(EditKernelChoice::Scalar));
/// assert_eq!(EditKernelChoice::default(), EditKernelChoice::BitParallel);
/// assert!("simd".parse::<EditKernelChoice>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EditKernelChoice {
    /// The banded two-row scalar DP ([`ScalarKernel`]).
    Scalar,
    /// Myers' bit-parallel algorithm ([`BitParallelKernel`]).
    #[default]
    BitParallel,
}

impl EditKernelChoice {
    /// The selected kernel as a shared trait object.
    pub fn kernel(self) -> &'static dyn EditDistanceKernel {
        match self {
            EditKernelChoice::Scalar => &ScalarKernel,
            EditKernelChoice::BitParallel => &BitParallelKernel,
        }
    }

    /// The CLI spelling of this choice.
    pub fn as_str(self) -> &'static str {
        match self {
            EditKernelChoice::Scalar => "scalar",
            EditKernelChoice::BitParallel => "bitpar",
        }
    }
}

impl fmt::Display for EditKernelChoice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl FromStr for EditKernelChoice {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "scalar" => Ok(EditKernelChoice::Scalar),
            "bitpar" => Ok(EditKernelChoice::BitParallel),
            // dxlint: allow(no-hot-alloc) — cold CLI parse-error path, never per-comparison
            other => Err(format!(
                "edit kernel must be 'scalar' or 'bitpar', got '{other}'"
            )),
        }
    }
}

thread_local! {
    /// Shared scratch behind the thin free-function wrappers
    /// (`ned`, `ned_within`, `levenshtein*`, `bag_distance_lower_bound`).
    static THREAD_SCRATCH: RefCell<KernelScratch> = RefCell::new(KernelScratch::new());
}

/// Runs `f` with this thread's resident [`KernelScratch`].
///
/// The wrappers in this crate use it so one-off calls still pay zero
/// allocations after warm-up. Do not call the wrappers from inside `f`
/// — the scratch is exclusively borrowed for its duration (batch code
/// holds its own scratch instead).
pub fn with_thread_scratch<R>(f: impl FnOnce(&mut KernelScratch) -> R) -> R {
    THREAD_SCRATCH.with(|cell| f(&mut cell.borrow_mut()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::{levenshtein, levenshtein_bounded};

    fn kernels() -> [&'static dyn EditDistanceKernel; 2] {
        [&ScalarKernel, &BitParallelKernel]
    }

    #[test]
    fn kernels_agree_with_scalar_reference() {
        let words = [
            "",
            "a",
            "kitten",
            "sitting",
            "The Matrix",
            "The Motrix",
            "Boston",
            "Los Angeles",
            "naïve café",
            "日本語",
        ];
        let mut scratch = KernelScratch::new();
        for kernel in kernels() {
            for a in words {
                for b in words {
                    for max in [0, 1, 2, 5, 100] {
                        assert_eq!(
                            kernel.bounded(&mut scratch, a, b, max),
                            levenshtein_bounded(a, b, max),
                            "{} {a:?} vs {b:?} max={max}",
                            kernel.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn prepared_pattern_serves_many_texts() {
        let mut scratch = KernelScratch::new();
        for kernel in kernels() {
            kernel.prepare(&mut scratch, "discovery", 9);
            for (text, n) in [
                ("discovery", 9),
                ("discoverie", 10),
                ("recovery", 8),
                ("", 0),
            ] {
                let expect = levenshtein("discovery", text);
                assert_eq!(
                    kernel.bounded_prepared(&mut scratch, text, n, 9),
                    Some(expect),
                    "{} vs {text:?}",
                    kernel.name()
                );
            }
        }
    }

    #[test]
    fn choice_round_trips_and_selects() {
        for choice in [EditKernelChoice::Scalar, EditKernelChoice::BitParallel] {
            assert_eq!(choice.as_str().parse::<EditKernelChoice>(), Ok(choice));
            assert_eq!(choice.kernel().name(), choice.as_str());
            assert_eq!(choice.to_string(), choice.as_str());
        }
        assert!("".parse::<EditKernelChoice>().is_err());
    }

    #[test]
    fn thread_scratch_is_reusable() {
        let d1 = with_thread_scratch(|s| BitParallelKernel.bounded(s, "abc", "abd", 2));
        let d2 = with_thread_scratch(|s| BitParallelKernel.bounded(s, "abc", "abd", 2));
        assert_eq!(d1, Some(1));
        assert_eq!(d1, d2);
    }
}
