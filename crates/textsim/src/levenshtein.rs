//! Levenshtein edit distance over Unicode scalar values.
//!
//! Two entry points are provided: [`levenshtein`] computes the exact
//! distance, and [`levenshtein_bounded`] computes the distance only if it
//! does not exceed a caller-supplied maximum, using Ukkonen's banded dynamic
//! program so that the cost is `O(max · min(|a|,|b|))` instead of
//! `O(|a| · |b|)`. The bounded variant is what the DogmatiX pipeline uses:
//! Definition 7 only needs to know whether the normalised distance is below
//! `θ_tuple`, which caps the absolute distance at `θ_tuple · max(|a|,|b|)`.

/// Exact Levenshtein distance between `a` and `b`, counted in Unicode
/// scalar values (not bytes).
///
/// Uses the classic two-row dynamic program; `O(|a|·|b|)` time,
/// `O(min(|a|,|b|))` space.
///
/// # Examples
/// ```
/// use dogmatix_textsim::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("Matrix", "The Matrix"), 4);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let (short, long) = order_by_len(a, b);
    let short: Vec<char> = short.chars().collect();
    let long_len = long.chars().count();
    if short.is_empty() {
        return long_len;
    }

    let mut prev: Vec<usize> = (0..=short.len()).collect();
    let mut curr: Vec<usize> = vec![0; short.len() + 1];

    for (i, lc) in long.chars().enumerate() {
        curr[0] = i + 1;
        for (j, &sc) in short.iter().enumerate() {
            let cost = usize::from(lc != sc);
            curr[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(curr[j] + 1);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[short.len()]
}

/// Levenshtein distance if it is `<= max`, otherwise `None`.
///
/// Runs the banded dynamic program restricted to a diagonal band of width
/// `2·max+1` and exits early as soon as every cell in a row exceeds `max`.
/// For small `max` (the common case when pruning by `θ_tuple`) this is
/// dramatically cheaper than the full matrix.
///
/// # Examples
/// ```
/// use dogmatix_textsim::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let (short, long) = order_by_len(a, b);
    let short: Vec<char> = short.chars().collect();
    let long: Vec<char> = long.chars().collect();

    // Length difference is a lower bound on the distance.
    if long.len() - short.len() > max {
        return None;
    }
    if short.is_empty() {
        return Some(long.len());
    }

    const BIG: usize = usize::MAX / 2;
    let mut prev: Vec<usize> = (0..=short.len())
        .map(|j| if j <= max { j } else { BIG })
        .collect();
    let mut curr: Vec<usize> = vec![BIG; short.len() + 1];

    for (i, &lc) in long.iter().enumerate() {
        // Only columns within `max` of the diagonal can end up <= max.
        let lo = i.saturating_sub(max);
        let hi = (i + max + 1).min(short.len());
        if lo > short.len() {
            return None;
        }
        curr[0] = if i < max { i + 1 } else { BIG };
        if lo > 0 {
            curr[lo] = BIG;
        }
        let mut row_min = curr[0];
        for j in lo..hi {
            let cost = usize::from(lc != short[j]);
            let del = prev[j + 1].saturating_add(1);
            let ins = curr[j].saturating_add(1);
            let sub = prev[j].saturating_add(cost);
            let v = del.min(ins).min(sub);
            curr[j + 1] = v;
            row_min = row_min.min(v);
        }
        if hi < short.len() {
            curr[hi + 1] = BIG;
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    let d = prev[short.len()];
    (d <= max).then_some(d)
}

/// Orders the pair so the first element is the shorter string (by bytes as
/// a cheap proxy validated against char counts downstream — ordering does
/// not change the distance, only the DP row length).
fn order_by_len<'a>(a: &'a str, b: &'a str) -> (&'a str, &'a str) {
    if a.chars().count() <= b.chars().count() {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn empty_vs_nonempty_is_length() {
        assert_eq!(levenshtein("", "hello"), 5);
        assert_eq!(levenshtein("hello", ""), 5);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("book", "back"), 2);
    }

    #[test]
    fn paper_title_example() {
        // "The Matrix" vs "Matrix": delete "The " = 4 edits.
        assert_eq!(levenshtein("The Matrix", "Matrix"), 4);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn unicode_counted_in_chars_not_bytes() {
        // ä is 2 bytes but one scalar value.
        assert_eq!(levenshtein("Bär", "Bar"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn bounded_agrees_with_exact_when_within() {
        let pairs = [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abc", ""),
            ("The Matrix", "Matrix"),
            ("same", "same"),
            ("a", "b"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d), "{a:?} vs {b:?}");
            assert_eq!(levenshtein_bounded(a, b, d + 3), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_difference() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn bounded_zero_max() {
        assert_eq!(levenshtein_bounded("x", "x", 0), Some(0));
        assert_eq!(levenshtein_bounded("x", "y", 0), None);
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["disc", "disk", "desk", "dusk", "", "d"];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
