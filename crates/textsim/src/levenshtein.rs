//! Levenshtein edit distance over Unicode scalar values.
//!
//! Two entry points are provided: [`levenshtein`] computes the exact
//! distance, and [`levenshtein_bounded`] computes the distance only if it
//! does not exceed a caller-supplied maximum, using Ukkonen's banded dynamic
//! program so that the cost is `O(max · min(|a|,|b|))` instead of
//! `O(|a| · |b|)`. The bounded variant is what the DogmatiX pipeline uses:
//! Definition 7 only needs to know whether the normalised distance is below
//! `θ_tuple`, which caps the absolute distance at `θ_tuple · max(|a|,|b|)`.
//!
//! Both functions are allocation-free on the hot path: ASCII inputs run
//! directly over the byte slices and other inputs decode into reusable
//! thread-local buffers (see [`crate::kernel::KernelScratch`]). The banded
//! DP here is also the reference implementation behind
//! [`crate::kernel::ScalarKernel`], which the bit-parallel kernel
//! ([`crate::myers`]) must match bit for bit.

use crate::kernel::{with_thread_scratch, KernelScratch};

/// Exact Levenshtein distance between `a` and `b`, counted in Unicode
/// scalar values (not bytes).
///
/// Uses the classic two-row dynamic program; `O(|a|·|b|)` time, with the
/// two rows held in reusable thread-local scratch.
///
/// # Examples
/// ```
/// use dogmatix_textsim::levenshtein;
/// assert_eq!(levenshtein("kitten", "sitting"), 3);
/// assert_eq!(levenshtein("", "abc"), 3);
/// assert_eq!(levenshtein("Matrix", "The Matrix"), 4);
/// ```
pub fn levenshtein(a: &str, b: &str) -> usize {
    if a == b {
        return 0;
    }
    let la = char_count(a);
    let lb = char_count(b);
    let max_len = la.max(lb);
    // A band as wide as the longer string covers the whole matrix, so
    // the bounded DP degenerates to the exact one and always answers.
    with_thread_scratch(|s| bounded_with(s, a, la, b, lb, max_len).unwrap_or(max_len))
}

/// Levenshtein distance if it is `<= max`, otherwise `None`.
///
/// Runs the banded dynamic program restricted to a diagonal band of width
/// `2·max+1` and exits early as soon as every cell in a row exceeds `max`.
/// For small `max` (the common case when pruning by `θ_tuple`) this is
/// dramatically cheaper than the full matrix.
///
/// # Examples
/// ```
/// use dogmatix_textsim::levenshtein_bounded;
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 3), Some(3));
/// assert_eq!(levenshtein_bounded("kitten", "sitting", 2), None);
/// assert_eq!(levenshtein_bounded("same", "same", 0), Some(0));
/// ```
pub fn levenshtein_bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let la = char_count(a);
    let lb = char_count(b);
    with_thread_scratch(|s| bounded_with(s, a, la, b, lb, max))
}

/// Scalar values in `s`, with an O(bytes) ASCII fast path instead of a
/// UTF-8 decode.
#[inline]
pub(crate) fn char_count(s: &str) -> usize {
    if s.is_ascii() {
        s.len()
    } else {
        s.chars().count()
    }
}

/// One-shot banded distance with caller-supplied char counts, using
/// `scratch` for the DP rows and any non-ASCII decode buffers.
pub(crate) fn bounded_with(
    scratch: &mut KernelScratch,
    a: &str,
    la: usize,
    b: &str,
    lb: usize,
    max: usize,
) -> Option<usize> {
    // Any distance is at most the longer length, so a larger bound is
    // equivalent and keeps the band arithmetic overflow-free.
    let max = max.min(la.max(lb));
    // Length difference is a lower bound on the distance.
    if la.abs_diff(lb) > max {
        return None;
    }
    if la.min(lb) == 0 {
        return Some(la.max(lb)); // within max by the length guard
    }
    if a.is_ascii() && b.is_ascii() {
        let (short, long) = if la <= lb {
            (a.as_bytes(), b.as_bytes())
        } else {
            (b.as_bytes(), a.as_bytes())
        };
        return banded(
            short,
            long,
            max,
            &mut scratch.prev_row,
            &mut scratch.curr_row,
        );
    }
    let (short, long) = if la <= lb { (a, b) } else { (b, a) };
    scratch.pat_chars.clear();
    scratch.pat_chars.extend(short.chars());
    scratch.pat_chars_ready = false; // the decoded pattern no longer matches
    scratch.text_chars.clear();
    scratch.text_chars.extend(long.chars());
    banded(
        scratch.pat_chars.as_slice(),
        scratch.text_chars.as_slice(),
        max,
        &mut scratch.prev_row,
        &mut scratch.curr_row,
    )
}

/// Ukkonen's banded two-row DP over pre-decoded symbol slices (`u8` for
/// ASCII, `char` otherwise); `short` must be the shorter slice and both
/// must be non-empty. `prev`/`curr` are reusable row buffers.
pub(crate) fn banded<T: Copy + PartialEq>(
    short: &[T],
    long: &[T],
    max: usize,
    prev: &mut Vec<usize>,
    curr: &mut Vec<usize>,
) -> Option<usize> {
    debug_assert!(!short.is_empty() && short.len() <= long.len());
    debug_assert!(long.len() - short.len() <= max);

    const BIG: usize = usize::MAX / 2;
    prev.clear();
    prev.extend((0..=short.len()).map(|j| if j <= max { j } else { BIG }));
    curr.clear();
    curr.resize(short.len() + 1, BIG);

    for (i, &lc) in long.iter().enumerate() {
        // Only columns within `max` of the diagonal can end up <= max.
        let lo = i.saturating_sub(max);
        let hi = (i + max + 1).min(short.len());
        if lo > short.len() {
            return None;
        }
        curr[0] = if i < max { i + 1 } else { BIG };
        if lo > 0 {
            curr[lo] = BIG;
        }
        let mut row_min = curr[0];
        for j in lo..hi {
            let cost = usize::from(lc != short[j]);
            let del = prev[j + 1].saturating_add(1);
            let ins = curr[j].saturating_add(1);
            let sub = prev[j].saturating_add(cost);
            let v = del.min(ins).min(sub);
            curr[j + 1] = v;
            row_min = row_min.min(v);
        }
        if hi < short.len() {
            curr[hi + 1] = BIG;
        }
        if row_min > max {
            return None;
        }
        std::mem::swap(prev, curr);
    }
    let d = prev[short.len()];
    (d <= max).then_some(d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_strings_have_zero_distance() {
        assert_eq!(levenshtein("abc", "abc"), 0);
        assert_eq!(levenshtein("", ""), 0);
    }

    #[test]
    fn empty_vs_nonempty_is_length() {
        assert_eq!(levenshtein("", "hello"), 5);
        assert_eq!(levenshtein("hello", ""), 5);
    }

    #[test]
    fn classic_examples() {
        assert_eq!(levenshtein("kitten", "sitting"), 3);
        assert_eq!(levenshtein("flaw", "lawn"), 2);
        assert_eq!(levenshtein("gumbo", "gambol"), 2);
        assert_eq!(levenshtein("book", "back"), 2);
    }

    #[test]
    fn paper_title_example() {
        // "The Matrix" vs "Matrix": delete "The " = 4 edits.
        assert_eq!(levenshtein("The Matrix", "Matrix"), 4);
    }

    #[test]
    fn symmetric() {
        assert_eq!(
            levenshtein("abcdef", "azced"),
            levenshtein("azced", "abcdef")
        );
    }

    #[test]
    fn unicode_counted_in_chars_not_bytes() {
        // ä is 2 bytes but one scalar value.
        assert_eq!(levenshtein("Bär", "Bar"), 1);
        assert_eq!(levenshtein("日本語", "日本"), 1);
    }

    #[test]
    fn mixed_ascii_and_unicode_operands() {
        // One ASCII operand, one not: exercises the decoded-chars path.
        assert_eq!(levenshtein("cafe", "café"), 1);
        assert_eq!(levenshtein_bounded("cafe", "café", 1), Some(1));
        assert_eq!(levenshtein_bounded("café", "cafe", 0), None);
    }

    #[test]
    fn bounded_agrees_with_exact_when_within() {
        let pairs = [
            ("kitten", "sitting"),
            ("", "abc"),
            ("abc", ""),
            ("The Matrix", "Matrix"),
            ("same", "same"),
            ("a", "b"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            assert_eq!(levenshtein_bounded(a, b, d), Some(d), "{a:?} vs {b:?}");
            assert_eq!(levenshtein_bounded(a, b, d + 3), Some(d));
            if d > 0 {
                assert_eq!(levenshtein_bounded(a, b, d - 1), None);
            }
        }
    }

    #[test]
    fn bounded_rejects_on_length_difference() {
        assert_eq!(levenshtein_bounded("ab", "abcdefgh", 3), None);
    }

    #[test]
    fn bounded_zero_max() {
        assert_eq!(levenshtein_bounded("x", "x", 0), Some(0));
        assert_eq!(levenshtein_bounded("x", "y", 0), None);
    }

    #[test]
    fn bounded_huge_max_is_exact() {
        // The bound is clamped internally, so even usize::MAX is safe.
        assert_eq!(
            levenshtein_bounded("kitten", "sitting", usize::MAX),
            Some(3)
        );
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let words = ["disc", "disk", "desk", "dusk", "", "d"];
        for a in words {
            for b in words {
                for c in words {
                    assert!(levenshtein(a, c) <= levenshtein(a, b) + levenshtein(b, c));
                }
            }
        }
    }
}
