#![warn(missing_docs)]

//! # dogmatix-textsim
//!
//! String-similarity substrate for the DogmatiX reproduction
//! (Weis & Naumann, *DogmatiX Tracks down Duplicates in XML*, SIGMOD 2005).
//!
//! The paper's OD-tuple distance (Definition 7) is the Levenshtein edit
//! distance normalised by the longer string's length. Computing it naively
//! for every pair of OD tuples is "a very expensive operation" (Section 5.1),
//! so the authors combine it with cheap upper and lower bounds from their
//! earlier work \[18\]. This crate provides:
//!
//! * [`kernel`] — the pluggable [`kernel::EditDistanceKernel`] seam: the
//!   scalar banded DP and Myers' bit-parallel algorithm as swappable,
//!   bit-identical bounded-distance kernels,
//! * [`myers`] — the bit-parallel recurrence itself (u64 blocks,
//!   multi-block for patterns >64 scalar values),
//! * [`levenshtein()`] / [`levenshtein_bounded`] — exact and banded
//!   (early-exit) edit distance over Unicode scalar values,
//! * [`ned()`] / [`ned_within`] — the normalised edit distance of Definition 7
//!   with bound-based pruning, wrapped over the default kernel,
//! * [`bounds`] — length and bag-distance lower bounds used for pruning,
//! * [`idf()`] — inverse document frequency helpers underlying `softIDF`
//!   (Definition 8),
//! * [`jaro()`], [`jaccard`], [`tokenize`] — alternative measures used by the
//!   ablation benchmarks,
//! * [`minhash`] — deterministic MinHash signatures and banded LSH keys
//!   backing the blocking filters,
//! * [`normalize`] — value normalisation applied before comparison.
//!
//! Everything here is deterministic and allocation-conscious: the hot
//! [`ned_within`] path is allocation-free after warm-up — DP rows,
//! pattern bitmasks and bound tables all live in reusable scratch
//! (per-thread for the wrappers, caller-owned for batch kernels).

pub mod bounds;
pub mod idf;
pub mod jaccard;
pub mod jaro;
pub mod kernel;
pub mod levenshtein;
pub mod minhash;
pub mod myers;
pub mod ned;
pub mod normalize;
pub mod tokenize;

pub use bounds::{
    bag_distance_lower_bound, bag_distance_lower_bound_with, length_lower_bound, BoundsScratch,
};
pub use idf::{idf, soft_idf};
pub use jaccard::{jaccard_tokens, overlap_coefficient};
pub use jaro::{jaro, jaro_winkler};
pub use kernel::{
    BitParallelKernel, EditDistanceKernel, EditKernelChoice, KernelScratch, ScalarKernel,
};
pub use levenshtein::{levenshtein, levenshtein_bounded};
pub use minhash::{
    band_keys, band_keys_into, minhash_signature, minhash_signature_into, mix64, token_hash, Fnv1a,
};
pub use ned::{ned, ned_within, strict_cap};
pub use normalize::{normalize_value, normalize_value_into};
pub use tokenize::{
    char_ngrams, positional_qgram_hashes_into, positional_qgrams, word_token_hashes_into,
    word_tokens,
};
