//! MinHash signatures and banded locality-sensitive hashing over token
//! sets.
//!
//! A MinHash signature approximates the Jaccard similarity of two sets:
//! for each of `h` independent hash functions the signature keeps the
//! minimum hash over the set's elements, and the fraction of agreeing
//! signature slots is an unbiased estimator of the Jaccard coefficient.
//! Banding the signature into `b` bands of `r` rows turns the estimator
//! into a candidate filter: two sets collide in at least one band with
//! probability `1 − (1 − J^r)^b` — the classic S-curve whose steepness is
//! tuned via `b` and `r`.
//!
//! Everything here is deterministic: the `i`-th hash function is derived
//! from `i` (and an optional caller seed) by the splitmix64 finalizer, so
//! signatures are stable across runs, platforms, and thread counts.

/// The splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
///
/// Used both to hash tokens and to derive the per-slot hash functions of
/// a MinHash signature.
#[inline]
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Incremental FNV-1a hasher — the single definition of the byte hash
/// behind [`token_hash`], the q-gram hash emitters, the term-store
/// interner buckets, and the snapshot checksum. Keeping one copy
/// matters: the buffer-emitting q-gram path is documented as
/// byte-for-byte interchangeable with `token_hash`, which only holds
/// while both feed the same state machine.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{mix64, token_hash, Fnv1a};
/// let mut h = Fnv1a::new();
/// h.update(b"mat");
/// h.update(b"rix");
/// assert_eq!(mix64(h.finish()), token_hash("matrix"));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct Fnv1a(u64);

impl Fnv1a {
    /// Starts a hash at the FNV-1a offset basis.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Fnv1a(0xCBF2_9CE4_8422_2325)
    }

    /// Feeds bytes into the hash.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }

    /// The raw (unmixed) FNV-1a state.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// Stable 64-bit hash of a token (FNV-1a over the bytes, then mixed).
///
/// # Examples
/// ```
/// use dogmatix_textsim::token_hash;
/// assert_eq!(token_hash("matrix"), token_hash("matrix"));
/// assert_ne!(token_hash("matrix"), token_hash("matrix "));
/// ```
pub fn token_hash(token: &str) -> u64 {
    let mut h = Fnv1a::new();
    h.update(token.as_bytes());
    mix64(h.finish())
}

/// MinHash signature of a token set given as pre-hashed elements.
///
/// Slot `i` holds the minimum of `mix64(t ^ seed_i)` over all tokens `t`,
/// where `seed_i` is derived from `i` and `seed`. An empty token set
/// yields a signature of all `u64::MAX` — callers that want "no
/// candidates for empty descriptions" should skip empty sets instead of
/// hashing the sentinel.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{minhash_signature, token_hash};
/// let a: Vec<u64> = ["the", "matrix", "1999"].iter().map(|t| token_hash(t)).collect();
/// let b: Vec<u64> = ["1999", "matrix", "the"].iter().map(|t| token_hash(t)).collect();
/// // Signatures are order-independent (they hash the *set*).
/// assert_eq!(minhash_signature(&a, 8, 0), minhash_signature(&b, 8, 0));
/// assert_eq!(minhash_signature(&[], 4, 0), vec![u64::MAX; 4]);
/// ```
pub fn minhash_signature(token_hashes: &[u64], hashes: usize, seed: u64) -> Vec<u64> {
    let mut sig = Vec::new();
    minhash_signature_into(token_hashes, hashes, seed, &mut sig);
    sig
}

/// Buffer-emitting variant of [`minhash_signature`]: clears `out` and
/// fills it with the signature, reusing its capacity. Single-record
/// probe paths call this per request with a per-connection scratch
/// buffer, so steady-state serving performs no signature allocation.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{minhash_signature, minhash_signature_into, token_hash};
/// let toks: Vec<u64> = ["alpha", "beta"].iter().map(|t| token_hash(t)).collect();
/// let mut out = Vec::new();
/// minhash_signature_into(&toks, 8, 7, &mut out);
/// assert_eq!(out, minhash_signature(&toks, 8, 7));
/// ```
pub fn minhash_signature_into(token_hashes: &[u64], hashes: usize, seed: u64, out: &mut Vec<u64>) {
    out.clear();
    out.resize(hashes, u64::MAX);
    for (i, slot) in out.iter_mut().enumerate() {
        let fn_seed = mix64(seed ^ (i as u64).wrapping_mul(0xA076_1D64_78BD_642F));
        for &t in token_hashes {
            let h = mix64(t ^ fn_seed);
            if h < *slot {
                *slot = h;
            }
        }
    }
}

/// Collapses a signature into `bands` bucket keys of `rows` slots each.
///
/// Two sets are LSH candidates iff they agree on at least one band key.
/// The signature must hold exactly `bands · rows` slots.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{band_keys, minhash_signature, token_hash};
/// let toks: Vec<u64> = ["alpha", "beta"].iter().map(|t| token_hash(t)).collect();
/// let sig = minhash_signature(&toks, 8, 0);
/// let keys = band_keys(&sig, 4, 2);
/// assert_eq!(keys.len(), 4);
/// // Identical sets share every band.
/// assert_eq!(keys, band_keys(&minhash_signature(&toks, 8, 0), 4, 2));
/// ```
pub fn band_keys(signature: &[u64], bands: usize, rows: usize) -> Vec<u64> {
    let mut keys = Vec::new();
    band_keys_into(signature, bands, rows, &mut keys);
    keys
}

/// Buffer-emitting variant of [`band_keys`]: clears `out` and fills it
/// with the `bands` bucket keys, reusing its capacity. The signature
/// must hold exactly `bands · rows` slots.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{band_keys, band_keys_into, minhash_signature, token_hash};
/// let toks: Vec<u64> = ["alpha", "beta"].iter().map(|t| token_hash(t)).collect();
/// let sig = minhash_signature(&toks, 8, 0);
/// let mut out = Vec::new();
/// band_keys_into(&sig, 4, 2, &mut out);
/// assert_eq!(out, band_keys(&sig, 4, 2));
/// ```
pub fn band_keys_into(signature: &[u64], bands: usize, rows: usize, out: &mut Vec<u64>) {
    assert_eq!(
        signature.len(),
        bands * rows,
        "signature length must equal bands * rows"
    );
    out.clear();
    out.extend(signature.chunks(rows).enumerate().map(|(b, chunk)| {
        let mut key = mix64(b as u64 ^ 0x5851_F42D_4C95_7F2D);
        for &slot in chunk {
            key = mix64(key ^ slot);
        }
        key
    }));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hashes(tokens: &[&str]) -> Vec<u64> {
        tokens.iter().map(|t| token_hash(t)).collect()
    }

    #[test]
    fn signatures_are_deterministic_and_set_like() {
        let a = minhash_signature(&hashes(&["x", "y", "z"]), 16, 7);
        let b = minhash_signature(&hashes(&["z", "x", "y", "x"]), 16, 7);
        assert_eq!(a, b, "order and multiplicity must not matter");
    }

    #[test]
    fn similar_sets_agree_on_more_slots() {
        let base = hashes(&["alpha", "beta", "gamma", "delta", "epsilon"]);
        let near = hashes(&["alpha", "beta", "gamma", "delta", "zeta"]);
        let far = hashes(&["one", "two", "three", "four", "five"]);
        let s0 = minhash_signature(&base, 64, 0);
        let s1 = minhash_signature(&near, 64, 0);
        let s2 = minhash_signature(&far, 64, 0);
        let agree = |a: &[u64], b: &[u64]| a.iter().zip(b).filter(|(x, y)| x == y).count();
        assert!(agree(&s0, &s1) > agree(&s0, &s2));
    }

    #[test]
    fn different_seeds_give_different_signatures() {
        let toks = hashes(&["alpha", "beta"]);
        assert_ne!(
            minhash_signature(&toks, 8, 1),
            minhash_signature(&toks, 8, 2)
        );
    }

    #[test]
    #[should_panic(expected = "bands * rows")]
    fn band_keys_checks_shape() {
        band_keys(&[1, 2, 3], 2, 2);
    }

    #[test]
    fn empty_set_is_all_max() {
        assert_eq!(minhash_signature(&[], 3, 9), vec![u64::MAX; 3]);
    }

    #[test]
    fn into_variants_reuse_buffers_and_match_allocating_apis() {
        let toks = hashes(&["alpha", "beta", "gamma"]);
        let mut sig = vec![0xDEAD; 64]; // stale contents must be cleared
        let mut keys = vec![0xBEEF; 9];
        minhash_signature_into(&toks, 16, 3, &mut sig);
        assert_eq!(sig, minhash_signature(&toks, 16, 3));
        band_keys_into(&sig, 8, 2, &mut keys);
        assert_eq!(keys, band_keys(&sig, 8, 2));
        // Second fill with different inputs reuses the same buffers.
        let other = hashes(&["delta"]);
        minhash_signature_into(&other, 16, 3, &mut sig);
        assert_eq!(sig, minhash_signature(&other, 16, 3));
        band_keys_into(&sig, 4, 4, &mut keys);
        assert_eq!(keys, band_keys(&sig, 4, 4));
    }
}
