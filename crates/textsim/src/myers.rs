//! Myers' bit-parallel bounded edit distance.
//!
//! Computes the Levenshtein distance of a *pattern* against a *text* in
//! `O(⌈m/64⌉ · n)` word operations instead of the `O(m · n)` cell
//! operations of the scalar dynamic program, by packing the vertical
//! delta vectors of the DP matrix into `u64` blocks (Myers, *A fast
//! bit-vector algorithm for approximate string matching based on dynamic
//! programming*, JACM 1999; block recurrence after Hyyrö 2003 and the
//! Edlib formulation).
//!
//! The DogmatiX pipeline only ever needs **bounded** distances — Def. 7
//! caps the admissible distance at `θ_tuple · max(len)` and the \[18\]
//! lower bounds in [`crate::bounds`] reject most pairs before any DP
//! runs — so the entry points here take a `max` and exit early as soon
//! as the distance provably exceeds it. Results are exact: for every
//! input the returned distance equals the scalar DP's, bit for bit.
//!
//! Batch callers should go through [`crate::kernel::BitParallelKernel`],
//! which reuses the pattern preprocessing (the `Peq` bitmasks built by
//! [`PatternMasks`]) across every text compared against the same
//! pattern. The free function [`bounded`] is a self-contained
//! convenience for one-off distances and differential tests.
//!
//! ```
//! use dogmatix_textsim::myers;
//! assert_eq!(myers::bounded("kitten", "sitting", 3), Some(3));
//! assert_eq!(myers::bounded("kitten", "sitting", 2), None);
//! ```

/// Reusable `Peq` bitmask table for one pattern.
///
/// Maps each pattern character to a bitmask per 64-row block: bit `i` of
/// block `b` is set iff pattern position `b·64 + i` holds that
/// character. ASCII characters resolve through a direct 128-slot table
/// (the `[u64; N]`-style mapped alphabet); anything else falls back to a
/// small interning list scanned linearly — patterns are normalised term
/// values, so the distinct-character count stays tiny.
///
/// Rebuilding for a new pattern reuses every allocation, so a scratch-
/// resident `PatternMasks` amortises to zero allocations per pattern.
#[derive(Debug)]
pub struct PatternMasks {
    /// Pattern length in Unicode scalar values.
    m: usize,
    /// `⌈m / 64⌉`.
    blocks: usize,
    /// ASCII byte → slot + 1 (0 = character absent from the pattern).
    ascii: [u32; 128],
    /// Interned non-ASCII pattern characters and their slots.
    extra: Vec<(char, u32)>,
    /// Flat `Peq` storage: `masks[slot * blocks + block]`. Slot 0 is the
    /// all-zero "absent" row so lookups never branch.
    masks: Vec<u64>,
}

impl Default for PatternMasks {
    fn default() -> Self {
        PatternMasks {
            m: 0,
            blocks: 0,
            ascii: [0; 128],
            extra: Vec::new(),
            masks: Vec::new(),
        }
    }
}

impl PatternMasks {
    /// Creates an empty table; call [`PatternMasks::set_pattern`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pattern length (in scalar values) of the last `set_pattern` call.
    pub fn pattern_len(&self) -> usize {
        self.m
    }

    /// (Re)builds the mask table for `pattern`, which must contain
    /// `m > 0` scalar values. Reuses all prior allocations.
    pub fn set_pattern(&mut self, pattern: &str, m: usize) {
        debug_assert!(m > 0, "set_pattern needs a non-empty pattern");
        debug_assert_eq!(m, pattern.chars().count());
        let blocks = m.div_ceil(64);
        self.m = m;
        self.blocks = blocks;
        self.ascii = [0; 128];
        self.extra.clear();
        self.masks.clear();
        self.masks.resize(blocks, 0); // slot 0: absent characters
        let mut next = 0u32;
        for (i, c) in pattern.chars().enumerate() {
            let code = c as u32;
            let slot = if code < 128 {
                let entry = &mut self.ascii[code as usize];
                if *entry == 0 {
                    next += 1;
                    *entry = next;
                    self.masks.resize(self.masks.len() + blocks, 0);
                }
                *entry
            } else if let Some(&(_, s)) = self.extra.iter().find(|&&(ec, _)| ec == c) {
                s
            } else {
                next += 1;
                self.extra.push((c, next));
                self.masks.resize(self.masks.len() + blocks, 0);
                next
            };
            self.masks[slot as usize * blocks + i / 64] |= 1u64 << (i % 64);
        }
    }

    /// Slot of an ASCII text byte (0 when absent from the pattern).
    #[inline]
    fn slot_byte(&self, b: u8) -> usize {
        self.ascii[(b & 0x7f) as usize] as usize
    }

    /// Slot of an arbitrary text character (0 when absent).
    #[inline]
    fn slot_char(&self, c: char) -> usize {
        let code = c as u32;
        if code < 128 {
            self.ascii[code as usize] as usize
        } else {
            self.extra
                .iter()
                .find(|&&(ec, _)| ec == c)
                .map_or(0, |&(_, s)| s as usize)
        }
    }

    /// `Peq` mask of `slot` for block `block`.
    #[inline]
    fn eq_mask(&self, slot: usize, block: usize) -> u64 {
        self.masks[slot * self.blocks + block]
    }
}

/// One column step of one 64-row block (the Myers/Hyyrö recurrence in
/// the Edlib arrangement). `hin`/the return value are the horizontal
/// deltas entering the block's top row and leaving through the row
/// selected by `out_bit` — bit 63 for interior blocks, the true last
/// pattern row for the final block.
#[inline]
fn advance_block(vp: &mut u64, vn: &mut u64, mut eq: u64, hin: i32, out_bit: u64) -> i32 {
    let hin_neg = (hin < 0) as u64;
    let xv = eq | *vn;
    eq |= hin_neg;
    let xh = (((eq & *vp).wrapping_add(*vp)) ^ *vp) | eq;
    let mut ph = *vn | !(xh | *vp);
    let mut mh = *vp & xh;
    let mut hout = 0i32;
    if ph & out_bit != 0 {
        hout = 1;
    } else if mh & out_bit != 0 {
        hout = -1;
    }
    ph <<= 1;
    mh <<= 1;
    mh |= hin_neg;
    if hin > 0 {
        ph |= 1;
    }
    *vp = mh | !(xv | ph);
    *vn = ph & xv;
    hout
}

/// Bounded distance of a prepared pattern (`masks`, m > 0) against
/// `text` with `n` scalar values; `vp`/`vn` are reusable column-state
/// buffers for the multi-block path. Returns `Some(d)` iff `d <= max`.
///
/// After consuming text position `i` the tracked score is the DP cell
/// `D[m][i+1]`; each remaining text character can lower the final cell
/// by at most one, so `score > max + remaining` proves the distance
/// exceeds `max` and the scan aborts.
pub(crate) fn bounded_prepared(
    masks: &PatternMasks,
    text: &str,
    n: usize,
    max: usize,
    vp_buf: &mut Vec<u64>,
    vn_buf: &mut Vec<u64>,
) -> Option<usize> {
    let m = masks.m;
    debug_assert!(m > 0, "prepare the pattern before querying");
    debug_assert_eq!(n, text.chars().count());
    if m.abs_diff(n) > max {
        return None;
    }
    if n == 0 {
        return Some(m); // m <= max by the length guard
    }
    if masks.blocks == 1 {
        bounded_single_block(masks, text, n, max)
    } else {
        bounded_multi_block(masks, text, n, max, vp_buf, vn_buf)
    }
}

/// Single-block (`m <= 64`) specialisation: the whole column state lives
/// in two registers.
fn bounded_single_block(masks: &PatternMasks, text: &str, n: usize, max: usize) -> Option<usize> {
    let m = masks.m;
    let out_bit = 1u64 << (m - 1);
    let mut vp: u64 = if m == 64 { !0 } else { (1u64 << m) - 1 };
    let mut vn: u64 = 0;
    let mut score = m;
    if text.is_ascii() {
        for (i, &b) in text.as_bytes().iter().enumerate() {
            let eq = masks.eq_mask(masks.slot_byte(b), 0);
            score =
                score.wrapping_add_signed(advance_block(&mut vp, &mut vn, eq, 1, out_bit) as isize);
            if score > max + (n - i - 1) {
                return None;
            }
        }
    } else {
        for (i, c) in text.chars().enumerate() {
            let eq = masks.eq_mask(masks.slot_char(c), 0);
            score =
                score.wrapping_add_signed(advance_block(&mut vp, &mut vn, eq, 1, out_bit) as isize);
            if score > max + (n - i - 1) {
                return None;
            }
        }
    }
    (score <= max).then_some(score)
}

/// Multi-block path for patterns longer than 64 scalar values: blocks
/// are chained through their horizontal deltas, the score is tracked at
/// the true last pattern row (garbage in the final block's padding bits
/// only ever flows upward, away from it).
fn bounded_multi_block(
    masks: &PatternMasks,
    text: &str,
    n: usize,
    max: usize,
    vp_buf: &mut Vec<u64>,
    vn_buf: &mut Vec<u64>,
) -> Option<usize> {
    let m = masks.m;
    let blocks = masks.blocks;
    let last = blocks - 1;
    let out_bit = 1u64 << ((m - 1) % 64);
    vp_buf.clear();
    vp_buf.resize(blocks, !0u64);
    vn_buf.clear();
    vn_buf.resize(blocks, 0u64);
    let mut score = m;
    for (i, c) in text.chars().enumerate() {
        let slot = if (c as u32) < 128 {
            masks.slot_byte(c as u32 as u8)
        } else {
            masks.slot_char(c)
        };
        let mut hin = 1i32;
        for b in 0..last {
            hin = advance_block(
                &mut vp_buf[b],
                &mut vn_buf[b],
                masks.eq_mask(slot, b),
                hin,
                1u64 << 63,
            );
        }
        let hout = advance_block(
            &mut vp_buf[last],
            &mut vn_buf[last],
            masks.eq_mask(slot, last),
            hin,
            out_bit,
        );
        score = score.wrapping_add_signed(hout as isize);
        if score > max + (n - i - 1) {
            return None;
        }
    }
    (score <= max).then_some(score)
}

/// Self-contained bounded distance: `Some(d)` iff the Levenshtein
/// distance `d` of `a` and `b` satisfies `d <= max`.
///
/// Allocates its own pattern table and column state; batch callers
/// should prefer [`crate::kernel::BitParallelKernel`], which amortises
/// the pattern preprocessing across a whole posting group.
///
/// # Examples
/// ```
/// use dogmatix_textsim::myers;
/// assert_eq!(myers::bounded("The Matrix", "The Motrix", 2), Some(1));
/// assert_eq!(myers::bounded("Boston", "New York", 7), Some(7));
/// assert_eq!(myers::bounded("same", "same", 0), Some(0));
/// assert_eq!(myers::bounded("x", "y", 0), None);
/// ```
pub fn bounded(a: &str, b: &str, max: usize) -> Option<usize> {
    if a == b {
        return Some(0);
    }
    let m = a.chars().count();
    let n = b.chars().count();
    let max = max.min(m.max(n));
    if m.abs_diff(n) > max {
        return None;
    }
    if m == 0 || n == 0 {
        return Some(m.max(n)); // within max by the length guard
    }
    let mut masks = PatternMasks::new();
    masks.set_pattern(a, m);
    let mut vp = Vec::new();
    let mut vn = Vec::new();
    bounded_prepared(&masks, b, n, max, &mut vp, &mut vn)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::levenshtein::{levenshtein, levenshtein_bounded};

    #[test]
    fn agrees_with_scalar_on_classics() {
        let pairs = [
            ("kitten", "sitting"),
            ("flaw", "lawn"),
            ("gumbo", "gambol"),
            ("book", "back"),
            ("The Matrix", "Matrix"),
            ("Boston", "Los Angeles"),
            ("Boston", "New York"),
            ("", "abc"),
            ("abc", ""),
            ("same", "same"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            for max in [d.saturating_sub(1), d, d + 1, d + 10] {
                assert_eq!(
                    bounded(a, b, max),
                    levenshtein_bounded(a, b, max),
                    "{a:?} vs {b:?} max={max}"
                );
            }
        }
    }

    #[test]
    fn block_boundary_64_and_65() {
        // Patterns of exactly 64 and 65 chars straddle the single/multi
        // block split; texts probe substitutions at both ends.
        for m in [63, 64, 65, 128, 129] {
            let a: String = (0..m).map(|i| (b'a' + (i % 26) as u8) as char).collect();
            let mut head = a.clone();
            head.replace_range(0..1, "!");
            let mut tail = a.clone();
            tail.replace_range(m - 1..m, "!");
            let longer = format!("{a}xyz");
            for b in [a.clone(), head, tail, longer, String::new()] {
                let d = levenshtein(&a, &b);
                for max in [0, 1, d.saturating_sub(1), d, d + 2] {
                    assert_eq!(
                        bounded(&a, &b, max),
                        levenshtein_bounded(&a, &b, max),
                        "m={m} b={b:?} max={max}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_max_is_equality() {
        assert_eq!(bounded("abc", "abc", 0), Some(0));
        assert_eq!(bounded("abc", "abd", 0), None);
        assert_eq!(bounded("", "", 0), Some(0));
        assert_eq!(bounded("", "a", 0), None);
    }

    #[test]
    fn mixed_alphabets_intern_beyond_ascii() {
        let pairs = [
            ("Bär", "Bar"),
            ("日本語", "日本"),
            ("naïve café", "naive cafe"),
            ("ααββγγ", "αβγ"),
            ("διacritics", "diacritics"),
        ];
        for (a, b) in pairs {
            let d = levenshtein(a, b);
            assert_eq!(bounded(a, b, d), Some(d), "{a:?} vs {b:?}");
            if d > 0 {
                assert_eq!(bounded(a, b, d - 1), None, "{a:?} vs {b:?}");
            }
        }
    }

    #[test]
    fn reused_masks_forget_the_previous_pattern() {
        let mut masks = PatternMasks::new();
        let mut vp = Vec::new();
        let mut vn = Vec::new();
        masks.set_pattern("zzzzzz", 6);
        assert_eq!(
            bounded_prepared(&masks, "zzzzzz", 6, 0, &mut vp, &mut vn),
            Some(0)
        );
        // Rebuild with a disjoint alphabet: stale 'z' slots must be gone.
        masks.set_pattern("kitten", 6);
        assert_eq!(
            bounded_prepared(&masks, "sitting", 7, 3, &mut vp, &mut vn),
            Some(3)
        );
        assert_eq!(
            bounded_prepared(&masks, "zzzzzz", 6, 6, &mut vp, &mut vn),
            Some(6)
        );
    }

    #[test]
    fn long_unicode_multi_block() {
        let a: String = (0..150)
            .map(|i| if i % 5 == 0 { 'λ' } else { 'x' })
            .collect();
        let (start, ch) = a.char_indices().nth(70).unwrap();
        let mut b = a.clone();
        b.replace_range(start..start + ch.len_utf8(), "Q");
        let d = levenshtein(&a, &b);
        assert_eq!(d, 1);
        assert_eq!(bounded(&a, &b, 1), Some(1));
        assert_eq!(bounded(&a, &b, 0), None);
    }
}
