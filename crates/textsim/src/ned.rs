//! Normalised edit distance (Definition 7 of the paper).
//!
//! `ned(s_i, s_j)` is "the edit distance between two strings s_i and s_j
//! normalized by the maximum of the two strings' length". Values lie in
//! `[0, 1]`, where 0 means identical and 1 means maximally different.
//!
//! Both entry points are thin wrappers over the default
//! [`crate::kernel::BitParallelKernel`], so every caller — the filter's
//! q-gram verification, the probe path, the baseline measures — gets the
//! bit-parallel speedup without code changes. Kernels are exact, so the
//! values are identical to the scalar DP's.

use crate::bounds::{bag_distance_lower_bound_with, length_lower_bound};
use crate::kernel::{with_thread_scratch, BitParallelKernel, EditDistanceKernel};
use crate::levenshtein::char_count;

/// Normalised edit distance: `levenshtein(a, b) / max(|a|, |b|)`.
///
/// By convention two empty strings have distance 0 (they are identical).
///
/// # Examples
/// ```
/// use dogmatix_textsim::ned;
/// assert_eq!(ned("", ""), 0.0);
/// assert_eq!(ned("abc", "abc"), 0.0);
/// assert_eq!(ned("abc", ""), 1.0);
/// // Paper Section 5.1: ned("Boston", "Los Angeles") = 8/11.
/// assert!((ned("Boston", "Los Angeles") - 8.0 / 11.0).abs() < 1e-12);
/// // ned("Boston", "New York") = 7/8.
/// assert!((ned("Boston", "New York") - 7.0 / 8.0).abs() < 1e-12);
/// ```
pub fn ned(a: &str, b: &str) -> f64 {
    if a == b {
        return 0.0; // also covers the two-empty-strings convention
    }
    let la = char_count(a);
    let lb = char_count(b);
    let max_len = la.max(lb); // > 0: a != b rules out both being empty
    let d = with_thread_scratch(|s| {
        BitParallelKernel
            .bounded_counted(s, a, la, b, lb, max_len)
            .unwrap_or(max_len) // unreachable: any distance is <= max_len
    });
    d as f64 / max_len as f64
}

/// Normalised edit distance if it is strictly below `threshold`, else `None`.
///
/// This is the pruned comparison the paper's Equation 4 needs: a pair of OD
/// tuples is *similar* iff `odtDist < θ_tuple`, so the absolute edit
/// distance must be `< θ_tuple · max(|a|,|b|)`. The implementation applies,
/// in order of increasing cost:
///
/// 1. the length-difference lower bound,
/// 2. the bag-distance lower bound (multiset difference, from \[18\]),
/// 3. the banded early-exit edit distance through the bit-parallel kernel.
///
/// # Examples
/// ```
/// use dogmatix_textsim::ned_within;
/// assert_eq!(ned_within("abc", "abc", 0.15), Some(0.0));
/// assert_eq!(ned_within("abc", "xyz", 0.15), None);
/// // 1 edit over 10 chars = 0.1 < 0.15.
/// let d = ned_within("The Matrix", "The Motrix", 0.15).unwrap();
/// assert!((d - 0.1).abs() < 1e-12);
/// ```
pub fn ned_within(a: &str, b: &str, threshold: f64) -> Option<f64> {
    debug_assert!((0.0..=1.0).contains(&threshold));
    let la = char_count(a);
    let lb = char_count(b);
    let max_len = la.max(lb);
    if max_len == 0 {
        // Identical empty strings: distance 0, below any positive threshold.
        return (threshold > 0.0).then_some(0.0);
    }
    let max_edits = strict_cap(threshold, max_len)?;
    if length_lower_bound(la, lb) > max_edits {
        return None;
    }
    let d = with_thread_scratch(|s| {
        if bag_distance_lower_bound_with(a, b, &mut s.bounds) > max_edits {
            return None;
        }
        BitParallelKernel.bounded_counted(s, a, la, b, lb, max_edits)
    })?;
    Some(d as f64 / max_len as f64)
}

/// Largest integer `d` with `d / max_len < threshold`, or `None` if no
/// distance (not even 0) satisfies the strict bound.
///
/// This is the band the paper's strict `odtDist < θ_tuple` comparison
/// admits; kernel callers use it to bound the DP before any character is
/// looked at.
///
/// # Examples
/// ```
/// use dogmatix_textsim::strict_cap;
/// assert_eq!(strict_cap(0.15, 10), Some(1)); // d <= 1: 1/10 < 0.15 < 2/10
/// assert_eq!(strict_cap(0.5, 2), Some(0));   // d < 1 means d = 0
/// assert_eq!(strict_cap(0.0, 7), None);      // nothing is < 0
/// ```
pub fn strict_cap(threshold: f64, max_len: usize) -> Option<usize> {
    if threshold <= 0.0 {
        return None;
    }
    let bound = threshold * max_len as f64;
    let cap = if bound.fract() == 0.0 {
        // d < bound with integer bound means d <= bound - 1.
        bound as usize - 1
    } else {
        bound.floor() as usize
    };
    Some(cap.min(max_len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ned_is_in_unit_interval() {
        let words = ["", "a", "abc", "abcdef", "xyz", "The Matrix"];
        for a in words {
            for b in words {
                let d = ned(a, b);
                assert!((0.0..=1.0).contains(&d), "ned({a:?},{b:?})={d}");
            }
        }
    }

    #[test]
    fn ned_symmetric() {
        assert_eq!(ned("abc", "abcd"), ned("abcd", "abc"));
    }

    #[test]
    fn ned_identity_of_indiscernibles() {
        assert_eq!(ned("hello", "hello"), 0.0);
        assert!(ned("hello", "hellp") > 0.0);
    }

    #[test]
    fn ned_within_matches_unpruned_ned() {
        let words = ["disc01", "disc02", "The Matrix", "Matrix", "Signs", ""];
        for a in words {
            for b in words {
                for theta in [0.05, 0.15, 0.5, 0.99] {
                    let full = ned(a, b);
                    let pruned = ned_within(a, b, theta);
                    if full < theta {
                        let got = pruned.unwrap_or_else(|| {
                            panic!("ned_within({a:?},{b:?},{theta}) pruned but ned={full}")
                        });
                        assert!((got - full).abs() < 1e-12);
                    } else {
                        assert_eq!(pruned, None, "({a:?},{b:?},{theta}) full={full}");
                    }
                }
            }
        }
    }

    #[test]
    fn strict_threshold_boundary() {
        // distance exactly equal to threshold is NOT similar (Eq. 4 uses <).
        // "ab" vs "ax": d=1, max_len=2, ned=0.5.
        assert_eq!(ned_within("ab", "ax", 0.5), None);
        assert!(ned_within("ab", "ax", 0.51).is_some());
    }

    #[test]
    fn zero_threshold_never_matches() {
        assert_eq!(ned_within("abc", "abc", 0.0), None);
    }

    #[test]
    fn empty_pair_matches_any_positive_threshold() {
        assert_eq!(ned_within("", "", 0.15), Some(0.0));
        assert_eq!(ned_within("", "", 0.0), None);
    }

    #[test]
    fn non_ascii_pairs_go_through_the_scratch_bounds() {
        // Forces the unicode bag-distance path inside the thread scratch.
        let d = ned_within("naïve café", "naïve cafe", 0.3).unwrap();
        assert!((d - 0.1).abs() < 1e-12);
        assert_eq!(ned_within("ααββγγ", "xxyyzz", 0.5), None);
    }

    #[test]
    fn paper_city_distances() {
        // Section 5.1: (Boston, Los Angeles) 8/11 ≈ 0.72 vs (Boston, New York) 7/8.
        assert!(ned("Boston", "Los Angeles") < ned("Boston", "New York"));
    }
}
