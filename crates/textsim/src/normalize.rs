//! Value normalisation applied before OD-tuple comparison.
//!
//! The paper states (Section 6.1) that "we did not apply any data scrubbing
//! before performing experiments", so normalisation is deliberately light:
//! whitespace collapsing and Unicode-aware case folding only. Heavier
//! scrubbing (accent stripping, punctuation removal) is available behind
//! explicit options so ablations can quantify its effect.

/// Options controlling [`normalize_value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizeOptions {
    /// Lowercase the value (default: true).
    pub case_fold: bool,
    /// Collapse runs of whitespace to a single space and trim (default: true).
    pub collapse_whitespace: bool,
    /// Strip punctuation characters entirely (default: false — the paper
    /// applies no scrubbing).
    pub strip_punctuation: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        NormalizeOptions {
            case_fold: true,
            collapse_whitespace: true,
            strip_punctuation: false,
        }
    }
}

/// Normalises a text value with the default options (case folding and
/// whitespace collapsing).
///
/// # Examples
/// ```
/// use dogmatix_textsim::normalize_value;
/// assert_eq!(normalize_value("  The   MATRIX "), "the matrix");
/// ```
pub fn normalize_value(s: &str) -> String {
    let mut out = String::new();
    normalize_value_into(s, &mut out);
    out
}

/// Normalises a text value into a caller-provided buffer (cleared
/// first), avoiding a fresh allocation per call — the form the columnar
/// term-store builder uses on its hot interning path. Produces exactly
/// the same bytes as [`normalize_value`].
///
/// ASCII inputs (the overwhelmingly common case) are collapsed and
/// case-folded in a single pass with no intermediate allocation;
/// non-ASCII inputs fall back to the full Unicode-aware
/// [`str::to_lowercase`] so context-sensitive foldings (e.g. final
/// sigma) stay identical to [`normalize_value_with`].
///
/// # Examples
/// ```
/// use dogmatix_textsim::normalize::normalize_value_into;
/// let mut buf = String::new();
/// normalize_value_into("  The   MATRIX ", &mut buf);
/// assert_eq!(buf, "the matrix");
/// normalize_value_into("Next Value", &mut buf); // buffer is reused
/// assert_eq!(buf, "next value");
/// ```
pub fn normalize_value_into(s: &str, out: &mut String) {
    out.clear();
    // The fast path splits on ASCII whitespace, which excludes the
    // vertical tab that Unicode `split_whitespace` collapses — route
    // those rare inputs through the slow path so the contract holds.
    if s.is_ascii() && !s.bytes().any(|b| b == 0x0B) {
        let mut first = true;
        for token in s.split_ascii_whitespace() {
            if !first {
                out.push(' ');
            }
            for c in token.bytes() {
                out.push(c.to_ascii_lowercase() as char);
            }
            first = false;
        }
    } else {
        out.push_str(&normalize_value_with(s, NormalizeOptions::default()));
    }
}

/// Normalises a text value according to `opts`.
///
/// # Examples
/// ```
/// use dogmatix_textsim::normalize::{normalize_value_with, NormalizeOptions};
/// let opts = NormalizeOptions { strip_punctuation: true, ..Default::default() };
/// assert_eq!(normalize_value_with("Rock & Roll!", opts), "rock  roll");
/// ```
pub fn normalize_value_with(s: &str, opts: NormalizeOptions) -> String {
    let mut out = String::with_capacity(s.len());
    if opts.collapse_whitespace {
        let mut first = true;
        for token in s.split_whitespace() {
            if !first {
                out.push(' ');
            }
            out.push_str(token);
            first = false;
        }
    } else {
        out.push_str(s);
    }
    if opts.strip_punctuation {
        out.retain(|c| !c.is_ascii_punctuation());
    }
    if opts.case_fold {
        out = out.to_lowercase();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_folds_case_and_whitespace() {
        assert_eq!(normalize_value("A  B\tC"), "a b c");
        assert_eq!(normalize_value(""), "");
    }

    #[test]
    fn idempotent() {
        let inputs = ["  Mixed   CASE text ", "already normal", "ÜMLAUT"];
        for s in inputs {
            let once = normalize_value(s);
            assert_eq!(normalize_value(&once), once);
        }
    }

    #[test]
    fn vertical_tab_collapses_like_unicode_whitespace() {
        // \x0B is ASCII but not ASCII-whitespace: the fast path must
        // defer to the Unicode splitter so both entry points agree.
        assert_eq!(normalize_value("a\x0Bb"), "a b");
        let mut buf = String::new();
        normalize_value_into("a\x0Bb", &mut buf);
        assert_eq!(
            buf,
            normalize_value_with("a\x0Bb", NormalizeOptions::default())
        );
    }

    #[test]
    fn unicode_case_folding() {
        assert_eq!(normalize_value("STRAßE"), "straße");
        assert_eq!(normalize_value("ÄÖÜ"), "äöü");
    }

    #[test]
    fn punctuation_opt_in() {
        let opts = NormalizeOptions {
            strip_punctuation: true,
            ..Default::default()
        };
        assert_eq!(normalize_value_with("don't!", opts), "dont");
        // Default keeps punctuation (paper: no scrubbing).
        assert_eq!(normalize_value("don't!"), "don't!");
    }

    #[test]
    fn no_collapse_option() {
        let opts = NormalizeOptions {
            collapse_whitespace: false,
            case_fold: false,
            strip_punctuation: false,
        };
        assert_eq!(normalize_value_with(" a  b ", opts), " a  b ");
    }
}
