//! Value normalisation applied before OD-tuple comparison.
//!
//! The paper states (Section 6.1) that "we did not apply any data scrubbing
//! before performing experiments", so normalisation is deliberately light:
//! whitespace collapsing and Unicode-aware case folding only. Heavier
//! scrubbing (accent stripping, punctuation removal) is available behind
//! explicit options so ablations can quantify its effect.

/// Options controlling [`normalize_value`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NormalizeOptions {
    /// Lowercase the value (default: true).
    pub case_fold: bool,
    /// Collapse runs of whitespace to a single space and trim (default: true).
    pub collapse_whitespace: bool,
    /// Strip punctuation characters entirely (default: false — the paper
    /// applies no scrubbing).
    pub strip_punctuation: bool,
}

impl Default for NormalizeOptions {
    fn default() -> Self {
        NormalizeOptions {
            case_fold: true,
            collapse_whitespace: true,
            strip_punctuation: false,
        }
    }
}

/// Normalises a text value with the default options (case folding and
/// whitespace collapsing).
///
/// # Examples
/// ```
/// use dogmatix_textsim::normalize_value;
/// assert_eq!(normalize_value("  The   MATRIX "), "the matrix");
/// ```
pub fn normalize_value(s: &str) -> String {
    normalize_value_with(s, NormalizeOptions::default())
}

/// Normalises a text value according to `opts`.
///
/// # Examples
/// ```
/// use dogmatix_textsim::normalize::{normalize_value_with, NormalizeOptions};
/// let opts = NormalizeOptions { strip_punctuation: true, ..Default::default() };
/// assert_eq!(normalize_value_with("Rock & Roll!", opts), "rock  roll");
/// ```
pub fn normalize_value_with(s: &str, opts: NormalizeOptions) -> String {
    let mut out = String::with_capacity(s.len());
    if opts.collapse_whitespace {
        let mut first = true;
        for token in s.split_whitespace() {
            if !first {
                out.push(' ');
            }
            out.push_str(token);
            first = false;
        }
    } else {
        out.push_str(s);
    }
    if opts.strip_punctuation {
        out.retain(|c| !c.is_ascii_punctuation());
    }
    if opts.case_fold {
        out = out.to_lowercase();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_folds_case_and_whitespace() {
        assert_eq!(normalize_value("A  B\tC"), "a b c");
        assert_eq!(normalize_value(""), "");
    }

    #[test]
    fn idempotent() {
        let inputs = ["  Mixed   CASE text ", "already normal", "ÜMLAUT"];
        for s in inputs {
            let once = normalize_value(s);
            assert_eq!(normalize_value(&once), once);
        }
    }

    #[test]
    fn unicode_case_folding() {
        assert_eq!(normalize_value("STRAßE"), "straße");
        assert_eq!(normalize_value("ÄÖÜ"), "äöü");
    }

    #[test]
    fn punctuation_opt_in() {
        let opts = NormalizeOptions {
            strip_punctuation: true,
            ..Default::default()
        };
        assert_eq!(normalize_value_with("don't!", opts), "dont");
        // Default keeps punctuation (paper: no scrubbing).
        assert_eq!(normalize_value("don't!"), "don't!");
    }

    #[test]
    fn no_collapse_option() {
        let opts = NormalizeOptions {
            collapse_whitespace: false,
            case_fold: false,
            strip_punctuation: false,
        };
        assert_eq!(normalize_value_with(" a  b ", opts), " a  b ");
    }
}
