//! Tokenisation helpers: word tokens and character n-grams.

/// Splits `s` into lowercase word tokens on non-alphanumeric boundaries.
///
/// # Examples
/// ```
/// use dogmatix_textsim::word_tokens;
/// assert_eq!(word_tokens("The Matrix (1999)"), vec!["the", "matrix", "1999"]);
/// assert!(word_tokens("  ").is_empty());
/// ```
pub fn word_tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Character n-grams of `s` (over Unicode scalar values).
///
/// Returns the list of all contiguous windows of length `n`; strings shorter
/// than `n` yield a single gram containing the whole string (or nothing if
/// `s` is empty). `n` must be at least 1.
///
/// # Examples
/// ```
/// use dogmatix_textsim::char_ngrams;
/// assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
/// assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
/// assert!(char_ngrams("", 2).is_empty());
/// ```
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Positional q-grams of `s`: every contiguous window of exactly `q`
/// Unicode scalar values, paired with its start offset.
///
/// Unlike [`char_ngrams`], strings shorter than `q` yield **nothing** —
/// the exact semantics the q-gram count filter needs: a string of length
/// `m ≥ q` has exactly `m − q + 1` positional grams, each of which an
/// edit operation can destroy at most `q` of, so two strings within edit
/// distance `k` share at least `max(|a|,|b|) − q + 1 − k·q` grams whose
/// positions differ by at most `k`.
///
/// # Examples
/// ```
/// use dogmatix_textsim::positional_qgrams;
/// assert_eq!(
///     positional_qgrams("abcd", 2),
///     vec![("ab".to_string(), 0), ("bc".to_string(), 1), ("cd".to_string(), 2)]
/// );
/// assert!(positional_qgrams("ab", 3).is_empty());
/// ```
pub fn positional_qgrams(s: &str, q: usize) -> Vec<(String, usize)> {
    assert!(q >= 1, "q-gram size must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return Vec::new();
    }
    chars
        .windows(q)
        .enumerate()
        .map(|(pos, w)| (w.iter().collect(), pos))
        .collect()
}

/// Emits the positional q-grams of `s` as `(hash, position)` pairs into
/// a caller-provided buffer (cleared first), without materialising any
/// gram string. `hash` equals [`crate::token_hash`] of the gram, so the
/// output is interchangeable with hashing [`positional_qgrams`] — minus
/// one `String` allocation per gram, which is what the q-gram blocking
/// index builder cares about.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{positional_qgrams, token_hash};
/// use dogmatix_textsim::tokenize::positional_qgram_hashes_into;
/// let mut buf = Vec::new();
/// positional_qgram_hashes_into("abcd", 2, &mut buf);
/// let direct: Vec<(u64, u32)> = positional_qgrams("abcd", 2)
///     .into_iter()
///     .map(|(g, p)| (token_hash(&g), p as u32))
///     .collect();
/// assert_eq!(buf, direct);
/// ```
pub fn positional_qgram_hashes_into(s: &str, q: usize, out: &mut Vec<(u64, u32)>) {
    assert!(q >= 1, "q-gram size must be at least 1");
    out.clear();
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return;
    }
    let mut utf8 = [0u8; 4];
    for (pos, w) in chars.windows(q).enumerate() {
        // The shared FNV-1a over the gram's UTF-8 bytes, then mixed —
        // byte-for-byte what `token_hash` computes over the
        // materialised gram string.
        let mut h = crate::Fnv1a::new();
        for &c in w {
            h.update(c.encode_utf8(&mut utf8).as_bytes());
        }
        out.push((crate::mix64(h.finish()), pos as u32));
    }
}

/// Emits the hashes of `s`'s word tokens into a caller-provided buffer
/// (cleared first). Each hash equals [`crate::token_hash`] of the
/// corresponding [`word_tokens`] element; already-lowercase ASCII input
/// (e.g. a normalised term value) is hashed without allocating a single
/// token string.
///
/// # Examples
/// ```
/// use dogmatix_textsim::{token_hash, word_tokens};
/// use dogmatix_textsim::tokenize::word_token_hashes_into;
/// let mut buf = Vec::new();
/// word_token_hashes_into("the matrix (1999)", &mut buf);
/// let direct: Vec<u64> = word_tokens("the matrix (1999)")
///     .iter()
///     .map(|t| token_hash(t))
///     .collect();
/// assert_eq!(buf, direct);
/// ```
pub fn word_token_hashes_into(s: &str, out: &mut Vec<u64>) {
    out.clear();
    for token in s
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
    {
        if token.is_ascii() && !token.bytes().any(|b| b.is_ascii_uppercase()) {
            out.push(crate::token_hash(token));
        } else {
            // Mixed-case or non-ASCII tokens go through the same
            // allocation path as `word_tokens`, so context-sensitive
            // lowercasing stays identical.
            out.push(crate::token_hash(&token.to_lowercase()));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buffer_emitting_qgram_hashes_match_materialised_grams() {
        let mut buf = Vec::new();
        for s in ["", "a", "ab", "midnight journey", "straße", "ÄÖÜ abc"] {
            for q in [1usize, 2, 3] {
                positional_qgram_hashes_into(s, q, &mut buf);
                let direct: Vec<(u64, u32)> = positional_qgrams(s, q)
                    .into_iter()
                    .map(|(g, p)| (crate::token_hash(&g), p as u32))
                    .collect();
                assert_eq!(buf, direct, "s={s:?} q={q}");
            }
        }
    }

    #[test]
    fn buffer_emitting_word_token_hashes_match_word_tokens() {
        let mut buf = Vec::new();
        for s in [
            "",
            "The Matrix (1999)",
            "straße TEST",
            "a-b_c 42",
            "ΣΊΣΥΦΟΣ",
        ] {
            word_token_hashes_into(s, &mut buf);
            let direct: Vec<u64> = word_tokens(s)
                .iter()
                .map(|t| crate::token_hash(t))
                .collect();
            assert_eq!(buf, direct, "s={s:?}");
        }
    }

    #[test]
    fn word_tokens_lowercase_and_split() {
        assert_eq!(word_tokens("Keanu Reeves"), vec!["keanu", "reeves"]);
        assert_eq!(word_tokens("rock&roll"), vec!["rock", "roll"]);
    }

    #[test]
    fn word_tokens_unicode() {
        assert_eq!(word_tokens("Käse-Brot"), vec!["käse", "brot"]);
    }

    #[test]
    fn ngram_count() {
        assert_eq!(char_ngrams("abcdef", 3).len(), 4);
        assert_eq!(char_ngrams("abcdef", 1).len(), 6);
    }

    #[test]
    fn ngram_short_string() {
        assert_eq!(char_ngrams("ab", 2), vec!["ab"]);
        assert_eq!(char_ngrams("a", 5), vec!["a"]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn ngram_zero_panics() {
        char_ngrams("abc", 0);
    }

    #[test]
    fn positional_qgram_count_and_positions() {
        let grams = positional_qgrams("abcdef", 3);
        assert_eq!(grams.len(), 4, "m - q + 1 grams");
        assert_eq!(grams[0], ("abc".to_string(), 0));
        assert_eq!(grams[3], ("def".to_string(), 3));
    }

    #[test]
    fn positional_qgrams_short_strings_yield_nothing() {
        assert!(positional_qgrams("", 2).is_empty());
        assert!(positional_qgrams("a", 2).is_empty());
        assert_eq!(positional_qgrams("ab", 2).len(), 1);
    }
}
