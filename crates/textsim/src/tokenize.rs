//! Tokenisation helpers: word tokens and character n-grams.

/// Splits `s` into lowercase word tokens on non-alphanumeric boundaries.
///
/// # Examples
/// ```
/// use dogmatix_textsim::word_tokens;
/// assert_eq!(word_tokens("The Matrix (1999)"), vec!["the", "matrix", "1999"]);
/// assert!(word_tokens("  ").is_empty());
/// ```
pub fn word_tokens(s: &str) -> Vec<String> {
    s.split(|c: char| !c.is_alphanumeric())
        .filter(|t| !t.is_empty())
        .map(|t| t.to_lowercase())
        .collect()
}

/// Character n-grams of `s` (over Unicode scalar values).
///
/// Returns the list of all contiguous windows of length `n`; strings shorter
/// than `n` yield a single gram containing the whole string (or nothing if
/// `s` is empty). `n` must be at least 1.
///
/// # Examples
/// ```
/// use dogmatix_textsim::char_ngrams;
/// assert_eq!(char_ngrams("abcd", 2), vec!["ab", "bc", "cd"]);
/// assert_eq!(char_ngrams("ab", 3), vec!["ab"]);
/// assert!(char_ngrams("", 2).is_empty());
/// ```
pub fn char_ngrams(s: &str, n: usize) -> Vec<String> {
    assert!(n >= 1, "n-gram size must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.is_empty() {
        return Vec::new();
    }
    if chars.len() <= n {
        return vec![chars.iter().collect()];
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Positional q-grams of `s`: every contiguous window of exactly `q`
/// Unicode scalar values, paired with its start offset.
///
/// Unlike [`char_ngrams`], strings shorter than `q` yield **nothing** —
/// the exact semantics the q-gram count filter needs: a string of length
/// `m ≥ q` has exactly `m − q + 1` positional grams, each of which an
/// edit operation can destroy at most `q` of, so two strings within edit
/// distance `k` share at least `max(|a|,|b|) − q + 1 − k·q` grams whose
/// positions differ by at most `k`.
///
/// # Examples
/// ```
/// use dogmatix_textsim::positional_qgrams;
/// assert_eq!(
///     positional_qgrams("abcd", 2),
///     vec![("ab".to_string(), 0), ("bc".to_string(), 1), ("cd".to_string(), 2)]
/// );
/// assert!(positional_qgrams("ab", 3).is_empty());
/// ```
pub fn positional_qgrams(s: &str, q: usize) -> Vec<(String, usize)> {
    assert!(q >= 1, "q-gram size must be at least 1");
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return Vec::new();
    }
    chars
        .windows(q)
        .enumerate()
        .map(|(pos, w)| (w.iter().collect(), pos))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn word_tokens_lowercase_and_split() {
        assert_eq!(word_tokens("Keanu Reeves"), vec!["keanu", "reeves"]);
        assert_eq!(word_tokens("rock&roll"), vec!["rock", "roll"]);
    }

    #[test]
    fn word_tokens_unicode() {
        assert_eq!(word_tokens("Käse-Brot"), vec!["käse", "brot"]);
    }

    #[test]
    fn ngram_count() {
        assert_eq!(char_ngrams("abcdef", 3).len(), 4);
        assert_eq!(char_ngrams("abcdef", 1).len(), 6);
    }

    #[test]
    fn ngram_short_string() {
        assert_eq!(char_ngrams("ab", 2), vec!["ab"]);
        assert_eq!(char_ngrams("a", 5), vec!["a"]);
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn ngram_zero_panics() {
        char_ngrams("abc", 0);
    }

    #[test]
    fn positional_qgram_count_and_positions() {
        let grams = positional_qgrams("abcdef", 3);
        assert_eq!(grams.len(), 4, "m - q + 1 grams");
        assert_eq!(grams[0], ("abc".to_string(), 0));
        assert_eq!(grams[3], ("def".to_string(), 3));
    }

    #[test]
    fn positional_qgrams_short_strings_yield_nothing() {
        assert!(positional_qgrams("", 2).is_empty());
        assert!(positional_qgrams("a", 2).is_empty());
        assert_eq!(positional_qgrams("ab", 2).len(), 1);
    }
}
