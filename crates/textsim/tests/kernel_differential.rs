//! Differential suite for the edit-distance kernels: for ANY pair of
//! strings (random Unicode, mixed alphabets, multi-block lengths) and
//! ANY bound, `myers` == scalar DP == an independent full-matrix
//! reference — exact integer equality, the bit-identity contract of
//! `EditDistanceKernel`.
//!
//! Honours the `PROPTEST_CASES` environment override (ci.sh raises it).

use dogmatix_textsim::kernel::{
    BitParallelKernel, EditDistanceKernel, KernelScratch, ScalarKernel,
};
use dogmatix_textsim::{levenshtein, levenshtein_bounded, myers};
use proptest::prelude::*;

fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Independent reference: the textbook full-matrix DP, written against
/// no shared code so a common bug cannot hide.
fn reference_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut row: Vec<usize> = (0..=b.len()).collect();
    for (i, &ac) in a.iter().enumerate() {
        let mut diag = row[0];
        row[0] = i + 1;
        for (j, &bc) in b.iter().enumerate() {
            let cost = if ac == bc { diag } else { diag + 1 };
            diag = row[j + 1];
            row[j + 1] = cost.min(row[j] + 1).min(diag + 1);
        }
    }
    row[b.len()]
}

/// A random string over a randomly chosen alphabet family. Small, highly
/// colliding alphabets make interesting distances; the mixed family
/// forces the char-interning fallback; lengths up to 140 cross the
/// 64-char block boundary.
fn string_strategy() -> impl Strategy<Value = String> {
    let from = |alphabet: &'static [char], max_len: usize| {
        proptest::collection::vec(0usize..alphabet.len(), 0..max_len)
            .prop_map(move |ixs| ixs.into_iter().map(|i| alphabet[i]).collect())
    };
    const SMALL: &[char] = &['a', 'b', 'c', ' '];
    const WIDE: &[char] = &[
        'a', 'b', 'c', 'd', 'e', 'f', 'g', 'h', 'T', 'M', 'x', '0', '1', '9', ' ', '-', '.', '/',
    ];
    const MIXED: &[char] = &[
        'a', 'b', ' ', 'ä', 'é', 'α', 'β', '日', '本', '語', '€', 'ß',
    ];
    prop_oneof![
        3 => from(SMALL, 30),
        3 => from(WIDE, 30),
        2 => from(MIXED, 30),
        // Multi-block territory: patterns and texts beyond 64 chars.
        2 => from(WIDE, 140),
        1 => from(MIXED, 140),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(64)))]

    #[test]
    fn myers_equals_scalar_dp_at_every_bound(pair in (string_strategy(), string_strategy()), max in 0usize..40) {
        let (a, b) = pair;
        let reference = reference_distance(&a, &b);
        prop_assert_eq!(levenshtein(&a, &b), reference, "scalar exact vs reference: {:?} {:?}", &a, &b);

        // Probe the interesting bounds: the random one, both sides of the
        // true distance, and the degenerate 0.
        for cap in [max, reference, reference.saturating_sub(1), reference + 1, 0] {
            let want = (reference <= cap).then_some(reference);
            prop_assert_eq!(
                myers::bounded(&a, &b, cap), want,
                "myers vs reference: {:?} {:?} cap={}", &a, &b, cap
            );
            prop_assert_eq!(
                levenshtein_bounded(&a, &b, cap), want,
                "banded scalar vs reference: {:?} {:?} cap={}", &a, &b, cap
            );
        }
    }

    #[test]
    fn prepared_kernels_agree_over_batches(pattern in string_strategy(), texts in proptest::collection::vec(string_strategy(), 1..8), max in 0usize..40) {
        // The batch shape of the scoring loop: one prepared pattern,
        // many texts, one scratch per kernel.
        let m = pattern.chars().count();
        let mut scalar_scratch = KernelScratch::new();
        let mut bitpar_scratch = KernelScratch::new();
        ScalarKernel.prepare(&mut scalar_scratch, &pattern, m);
        BitParallelKernel.prepare(&mut bitpar_scratch, &pattern, m);
        for text in &texts {
            let n = text.chars().count();
            let reference = reference_distance(&pattern, text);
            let want = (reference <= max).then_some(reference);
            prop_assert_eq!(
                ScalarKernel.bounded_prepared(&mut scalar_scratch, text, n, max),
                want,
                "scalar kernel: {:?} vs {:?} max={}", &pattern, text, max
            );
            prop_assert_eq!(
                BitParallelKernel.bounded_prepared(&mut bitpar_scratch, text, n, max),
                want,
                "bitpar kernel: {:?} vs {:?} max={}", &pattern, text, max
            );
        }
    }
}

#[test]
fn directed_block_boundary_and_zero_max() {
    // 64/65-char patterns sit exactly on the single/multi block split.
    let a64: String = "a".repeat(64);
    let a65: String = "a".repeat(65);
    let mut scratch = KernelScratch::new();
    for pattern in [&a64, &a65] {
        let m = pattern.chars().count();
        for (text, d) in [
            (pattern.clone(), 0),
            (format!("{pattern}b"), 1),
            (format!("b{pattern}"), 1),
            (pattern[1..].to_string(), 1),
            (pattern.replacen('a', "z", 1), 1),
        ] {
            let n = text.chars().count();
            assert_eq!(reference_distance(pattern, &text), d);
            for kernel in [&ScalarKernel as &dyn EditDistanceKernel, &BitParallelKernel] {
                kernel.prepare(&mut scratch, pattern, m);
                assert_eq!(
                    kernel.bounded_prepared(&mut scratch, &text, n, d),
                    Some(d),
                    "{} m={m} text={text:?}",
                    kernel.name()
                );
                let verdict_at_zero = kernel.bounded_prepared(&mut scratch, &text, n, 0);
                assert_eq!(verdict_at_zero, (d == 0).then_some(0));
            }
        }
    }
}
