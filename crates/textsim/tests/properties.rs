//! Property-based tests for the string-similarity substrate.
//!
//! These check metric axioms and bound soundness over randomly generated
//! strings — the invariants the DogmatiX pipeline's pruning correctness
//! rests on (a violated lower bound would silently drop true duplicates).

use dogmatix_textsim::{
    bag_distance_lower_bound, jaro, jaro_winkler, length_lower_bound, levenshtein,
    levenshtein_bounded, ned, ned_within,
};
use proptest::prelude::*;

fn small_string() -> impl Strategy<Value = String> {
    // Mixed ASCII + a few multibyte chars to exercise char-vs-byte handling.
    proptest::string::string_regex("[a-zA-Z0-9 äöüß]{0,24}").unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn lev_symmetric(a in small_string(), b in small_string()) {
        prop_assert_eq!(levenshtein(&a, &b), levenshtein(&b, &a));
    }

    #[test]
    fn lev_identity(a in small_string()) {
        prop_assert_eq!(levenshtein(&a, &a), 0);
    }

    #[test]
    fn lev_triangle(a in small_string(), b in small_string(), c in small_string()) {
        prop_assert!(levenshtein(&a, &c) <= levenshtein(&a, &b) + levenshtein(&b, &c));
    }

    #[test]
    fn lev_bounded_by_max_len(a in small_string(), b in small_string()) {
        let d = levenshtein(&a, &b);
        prop_assert!(d <= a.chars().count().max(b.chars().count()));
    }

    #[test]
    fn bounds_are_sound(a in small_string(), b in small_string()) {
        let d = levenshtein(&a, &b);
        prop_assert!(length_lower_bound(a.chars().count(), b.chars().count()) <= d);
        prop_assert!(bag_distance_lower_bound(&a, &b) <= d);
    }

    #[test]
    fn banded_agrees_with_exact(a in small_string(), b in small_string(), max in 0usize..30) {
        let d = levenshtein(&a, &b);
        match levenshtein_bounded(&a, &b, max) {
            Some(got) => {
                prop_assert_eq!(got, d);
                prop_assert!(d <= max);
            }
            None => prop_assert!(d > max),
        }
    }

    #[test]
    fn ned_in_unit_interval(a in small_string(), b in small_string()) {
        let d = ned(&a, &b);
        prop_assert!((0.0..=1.0).contains(&d));
    }

    #[test]
    fn ned_within_agrees_with_ned(a in small_string(), b in small_string(),
                                  theta in 0.0f64..1.0) {
        let full = ned(&a, &b);
        match ned_within(&a, &b, theta) {
            Some(got) => {
                prop_assert!((got - full).abs() < 1e-9);
                prop_assert!(full < theta);
            }
            None => prop_assert!(full >= theta - 1e-12),
        }
    }

    #[test]
    fn jaro_unit_interval_and_symmetric(a in small_string(), b in small_string()) {
        let j = jaro(&a, &b);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&j));
        prop_assert!((j - jaro(&b, &a)).abs() < 1e-12);
        let jw = jaro_winkler(&a, &b);
        prop_assert!(jw + 1e-12 >= j, "winkler must not decrease jaro");
        prop_assert!(jw <= 1.0 + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The buffer-emitting normaliser must produce byte-identical output
    /// to the allocating options-based path — the equality the columnar
    /// term store's bit-identity to the String-per-tuple build rests on.
    #[test]
    fn normalize_into_matches_options_path(
        s in proptest::string::string_regex("[a-zA-Z0-9 \\t äöüßΣσς]{0,32}").unwrap()
    ) {
        use dogmatix_textsim::normalize::{normalize_value_with, NormalizeOptions};
        let mut buf = String::from("stale contents");
        dogmatix_textsim::normalize_value_into(&s, &mut buf);
        prop_assert_eq!(&buf, &normalize_value_with(&s, NormalizeOptions::default()));
        prop_assert_eq!(&buf, &dogmatix_textsim::normalize_value(&s));
    }

    /// Buffer-emitting q-gram / word-token hashing agrees with hashing
    /// the materialised grams and tokens.
    #[test]
    fn buffer_hashers_match_materialised(
        s in proptest::string::string_regex("[a-zA-Z0-9 äöüß()\\-]{0,24}").unwrap(),
        q in 1usize..4,
    ) {
        let mut grams = Vec::new();
        dogmatix_textsim::positional_qgram_hashes_into(&s, q, &mut grams);
        let direct: Vec<(u64, u32)> = dogmatix_textsim::positional_qgrams(&s, q)
            .into_iter()
            .map(|(g, p)| (dogmatix_textsim::token_hash(&g), p as u32))
            .collect();
        prop_assert_eq!(grams, direct);

        let mut tokens = Vec::new();
        dogmatix_textsim::word_token_hashes_into(&s, &mut tokens);
        let direct: Vec<u64> = dogmatix_textsim::word_tokens(&s)
            .iter()
            .map(|t| dogmatix_textsim::token_hash(t))
            .collect();
        prop_assert_eq!(tokens, direct);
    }
}
