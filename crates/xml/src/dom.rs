//! Arena-allocated document object model.
//!
//! Nodes live in a single `Vec` owned by [`Document`] and are addressed by
//! copyable [`NodeId`] handles, so tree traversal never fights the borrow
//! checker and the whole tree frees in one deallocation. The navigation
//! primitives mirror what the DogmatiX algorithm needs:
//!
//! * ancestors (heuristic `hra`, r-distant ancestors),
//! * depth-bounded descendants (heuristic `hrd`),
//! * breadth-first descendant order (heuristic `hkd`, k-closest),
//! * direct text content (OD-tuple values),
//! * absolute XPaths with positional predicates (duplicate-cluster output).

use crate::error::XmlError;
use crate::parser;
use crate::serializer;
use std::fmt;

/// Handle to a node inside a [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) u32);

impl NodeId {
    /// The arena index of this node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// The payload of a node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NodeKind {
    /// The synthetic document root; its children are the top-level items
    /// (at most one element, plus comments/PIs).
    Document {
        /// Child node ids in document order.
        children: Vec<NodeId>,
    },
    /// An element like `<movie year="1999">…</movie>`.
    Element {
        /// Tag name (including any prefix, e.g. `xs:element`).
        name: String,
        /// Attributes in document order as `(name, value)` pairs.
        attributes: Vec<(String, String)>,
        /// Child node ids in document order.
        children: Vec<NodeId>,
    },
    /// A text run (CDATA sections are folded into text).
    Text(String),
    /// A comment (without the `<!--`/`-->` delimiters).
    Comment(String),
    /// A processing instruction.
    ProcessingInstruction {
        /// PI target, e.g. `xml-stylesheet`.
        target: String,
        /// Raw PI data.
        data: String,
    },
}

/// One node of the arena: parent link plus payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Node {
    pub(crate) parent: Option<NodeId>,
    pub(crate) kind: NodeKind,
}

impl Node {
    /// The node's payload.
    #[inline]
    pub fn kind(&self) -> &NodeKind {
        &self.kind
    }

    /// The node's parent, if any (the document node has none).
    #[inline]
    pub fn parent(&self) -> Option<NodeId> {
        self.parent
    }
}

/// An XML document: a node arena rooted at a synthetic document node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Document {
    pub(crate) nodes: Vec<Node>,
}

/// Id of the synthetic document node (always the first arena slot).
pub const DOCUMENT_NODE: NodeId = NodeId(0);

impl Document {
    /// Creates an empty document containing only the synthetic root.
    pub fn empty() -> Self {
        Document {
            nodes: vec![Node {
                parent: None,
                kind: NodeKind::Document {
                    children: Vec::new(),
                },
            }],
        }
    }

    /// Creates a document with a single empty root element named `root`.
    ///
    /// ```
    /// use dogmatix_xml::Document;
    /// let doc = Document::with_root("moviedoc");
    /// assert_eq!(doc.name(doc.root_element().unwrap()), Some("moviedoc"));
    /// ```
    pub fn with_root(root: &str) -> Self {
        let mut doc = Document::empty();
        doc.add_element(DOCUMENT_NODE, root);
        doc
    }

    /// Parses an XML document from text. See [`crate::parser`] for the
    /// supported grammar.
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        parser::parse_document(input)
    }

    /// Number of nodes in the arena (including the document node).
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the document contains only the synthetic root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1
    }

    /// Borrow a node by id. Panics if the id is from another document.
    #[inline]
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// The document's root element (the single top-level element), if any.
    pub fn root_element(&self) -> Option<NodeId> {
        match &self.nodes[0].kind {
            NodeKind::Document { children } => children
                .iter()
                .copied()
                .find(|c| matches!(self.node(*c).kind, NodeKind::Element { .. })),
            _ => unreachable!("node 0 is always the document node"),
        }
    }

    /// The element name, or `None` for non-element nodes.
    pub fn name(&self, id: NodeId) -> Option<&str> {
        match &self.node(id).kind {
            NodeKind::Element { name, .. } => Some(name),
            _ => None,
        }
    }

    /// Whether `id` is an element node.
    pub fn is_element(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Element { .. })
    }

    /// Whether `id` is a text node.
    pub fn is_text(&self, id: NodeId) -> bool {
        matches!(self.node(id).kind, NodeKind::Text(_))
    }

    /// The attributes of an element (empty slice for other node kinds).
    pub fn attributes(&self, id: NodeId) -> &[(String, String)] {
        match &self.node(id).kind {
            NodeKind::Element { attributes, .. } => attributes,
            _ => &[],
        }
    }

    /// Looks up an attribute value by name.
    pub fn attr(&self, id: NodeId, name: &str) -> Option<&str> {
        self.attributes(id)
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The children of a node (empty for leaves).
    pub fn children(&self, id: NodeId) -> &[NodeId] {
        match &self.node(id).kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => children,
            _ => &[],
        }
    }

    /// The element children of a node, in document order.
    pub fn child_elements(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.children(id)
            .iter()
            .copied()
            .filter(move |c| self.is_element(*c))
    }

    /// First child element with the given name.
    pub fn child_by_name(&self, id: NodeId, name: &str) -> Option<NodeId> {
        self.child_elements(id)
            .find(|c| self.name(*c) == Some(name))
    }

    /// The parent node, if any.
    pub fn parent(&self, id: NodeId) -> Option<NodeId> {
        self.node(id).parent
    }

    /// Iterator over proper ancestors, nearest first, stopping *before* the
    /// synthetic document node.
    pub fn ancestors(&self, id: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let mut current = self.parent(id);
        std::iter::from_fn(move || {
            let next = current?;
            if next == DOCUMENT_NODE {
                return None;
            }
            current = self.parent(next);
            Some(next)
        })
    }

    /// Depth of a node: the root element has depth 0.
    pub fn depth(&self, id: NodeId) -> usize {
        self.ancestors(id).count()
    }

    /// All element descendants of `id` in depth-first (document) order,
    /// excluding `id` itself.
    pub fn descendant_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack: Vec<NodeId> = self.children(id).iter().rev().copied().collect();
        while let Some(n) = stack.pop() {
            if self.is_element(n) {
                out.push(n);
                stack.extend(self.children(n).iter().rev().copied());
            }
        }
        out
    }

    /// Element descendants of `id` in breadth-first order (the order the
    /// paper's k-closest heuristic `hkd` enumerates, Heuristic 3), excluding
    /// `id` itself.
    pub fn breadth_first_elements(&self, id: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut queue: std::collections::VecDeque<NodeId> = self.child_elements(id).collect();
        while let Some(n) = queue.pop_front() {
            out.push(n);
            queue.extend(self.child_elements(n));
        }
        out
    }

    /// Element descendants whose depth relative to `id` is between 1 and
    /// `radius` inclusive (the paper's r-distant descendants, Heuristic 2).
    pub fn descendants_within(&self, id: NodeId, radius: usize) -> Vec<NodeId> {
        let mut out = Vec::new();
        if radius == 0 {
            return out;
        }
        let mut frontier: Vec<NodeId> = self.child_elements(id).collect();
        let mut dist = 1;
        while !frontier.is_empty() && dist <= radius {
            out.extend(frontier.iter().copied());
            if dist == radius {
                break;
            }
            frontier = frontier
                .iter()
                .flat_map(|n| self.child_elements(*n))
                .collect();
            dist += 1;
        }
        out
    }

    /// Concatenated text of *direct* text children, whitespace-trimmed.
    /// Returns `None` when there is no non-whitespace direct text — i.e.
    /// for elements of complex content model.
    pub fn direct_text(&self, id: NodeId) -> Option<String> {
        let mut out = String::new();
        for c in self.children(id) {
            if let NodeKind::Text(t) = &self.node(*c).kind {
                out.push_str(t);
            }
        }
        let trimmed = out.trim();
        if trimmed.is_empty() {
            None
        } else {
            Some(trimmed.to_string())
        }
    }

    /// Concatenated text of all descendant text nodes (untrimmed
    /// per-segment, trimmed at the ends).
    pub fn text_content(&self, id: NodeId) -> String {
        let mut out = String::new();
        self.collect_text(id, &mut out);
        out.trim().to_string()
    }

    fn collect_text(&self, id: NodeId, out: &mut String) {
        match &self.node(id).kind {
            NodeKind::Text(t) => out.push_str(t),
            NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                for c in children {
                    self.collect_text(*c, out);
                }
            }
            _ => {}
        }
    }

    /// 1-based position of `id` among same-named element siblings.
    pub fn sibling_position(&self, id: NodeId) -> usize {
        let Some(parent) = self.parent(id) else {
            return 1;
        };
        let name = self.name(id);
        let mut pos = 0;
        for sib in self.child_elements(parent) {
            if self.name(sib) == name {
                pos += 1;
            }
            if sib == id {
                return pos;
            }
        }
        1
    }

    /// Absolute XPath of an element with positional predicates, e.g.
    /// `/moviedoc[1]/movie[2]/title[1]` — the identifier format the paper's
    /// duplicate-cluster output uses (Fig. 3).
    pub fn absolute_path(&self, id: NodeId) -> String {
        let mut parts: Vec<String> = Vec::new();
        let mut current = Some(id);
        while let Some(n) = current {
            if n == DOCUMENT_NODE {
                break;
            }
            if let Some(name) = self.name(n) {
                parts.push(format!("{name}[{}]", self.sibling_position(n)));
            }
            current = self.parent(n);
        }
        parts.reverse();
        let mut out = String::new();
        for p in &parts {
            out.push('/');
            out.push_str(p);
        }
        out
    }

    /// Schema-level path of an element (names only, no positions), e.g.
    /// `/moviedoc/movie/title`. Two elements with equal name paths are
    /// instances of the same schema element.
    pub fn name_path(&self, id: NodeId) -> String {
        let mut parts: Vec<&str> = Vec::new();
        let mut current = Some(id);
        while let Some(n) = current {
            if n == DOCUMENT_NODE {
                break;
            }
            if let Some(name) = self.name(n) {
                parts.push(name);
            }
            current = self.parent(n);
        }
        parts.reverse();
        let mut out = String::new();
        for p in &parts {
            out.push('/');
            out.push_str(p);
        }
        out
    }

    /// Evaluates an XPath expression (see [`crate::xpath`]) against the
    /// document root, returning matching nodes in document order.
    pub fn select(&self, path: &str) -> Result<Vec<NodeId>, XmlError> {
        let parsed = crate::xpath::Path::parse(path)?;
        Ok(parsed.select(self, DOCUMENT_NODE))
    }

    /// Evaluates a (typically relative) XPath from a context node.
    pub fn select_from(&self, context: NodeId, path: &str) -> Result<Vec<NodeId>, XmlError> {
        let parsed = crate::xpath::Path::parse(path)?;
        Ok(parsed.select(self, context))
    }

    /// Serialises the document compactly.
    pub fn to_xml(&self) -> String {
        serializer::to_string(self, false)
    }

    /// Serialises the document with two-space indentation.
    pub fn to_xml_pretty(&self) -> String {
        serializer::to_string(self, true)
    }

    /// Serialises the subtree rooted at `id` compactly — the fragment
    /// shape a probe client sends over the wire.
    pub fn node_xml(&self, id: NodeId) -> String {
        serializer::node_to_string(self, id)
    }

    // ---- construction -------------------------------------------------

    fn push_node(&mut self, parent: NodeId, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            parent: Some(parent),
            kind,
        });
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                children.push(id)
            }
            // dxlint: allow(no-panic) — node-kind misuse is a caller bug; the builder API is infallible by contract
            _ => panic!("cannot append children to a leaf node"),
        }
        id
    }

    /// Appends a new empty element under `parent` and returns its id.
    pub fn add_element(&mut self, parent: NodeId, name: &str) -> NodeId {
        self.push_node(
            parent,
            NodeKind::Element {
                name: name.to_string(),
                attributes: Vec::new(),
                children: Vec::new(),
            },
        )
    }

    /// Appends a text node under `parent`.
    pub fn add_text(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.push_node(parent, NodeKind::Text(text.to_string()))
    }

    /// Appends a comment node under `parent`.
    pub fn add_comment(&mut self, parent: NodeId, text: &str) -> NodeId {
        self.push_node(parent, NodeKind::Comment(text.to_string()))
    }

    /// Convenience: appends `<name>text</name>` under `parent`.
    pub fn add_text_element(&mut self, parent: NodeId, name: &str, text: &str) -> NodeId {
        let el = self.add_element(parent, name);
        self.add_text(el, text);
        el
    }

    /// Sets (or replaces) an attribute on an element.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    pub fn set_attr(&mut self, id: NodeId, name: &str, value: &str) {
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { attributes, .. } => {
                if let Some(slot) = attributes.iter_mut().find(|(n, _)| n == name) {
                    slot.1 = value.to_string();
                } else {
                    attributes.push((name.to_string(), value.to_string()));
                }
            }
            // dxlint: allow(no-panic) — node-kind misuse is a caller bug; the builder API is infallible by contract
            _ => panic!("set_attr on non-element node"),
        }
    }

    /// All element node ids in the document, in document order.
    pub fn all_elements(&self) -> Vec<NodeId> {
        self.descendant_elements(DOCUMENT_NODE)
    }

    // ---- mutation -----------------------------------------------------

    /// Detaches a node from its parent: the node (and its whole subtree)
    /// disappears from traversal, selection, and serialisation. The arena
    /// slot is retained — node ids are never recycled — so ids held by
    /// callers stay unambiguous across mutations. Detaching an already
    /// detached node is a no-op.
    ///
    /// # Panics
    /// Panics when asked to detach the synthetic document node.
    pub fn detach(&mut self, id: NodeId) {
        assert!(id != DOCUMENT_NODE, "cannot detach the document node");
        let Some(parent) = self.nodes[id.index()].parent else {
            return;
        };
        match &mut self.nodes[parent.index()].kind {
            NodeKind::Document { children } | NodeKind::Element { children, .. } => {
                children.retain(|c| *c != id);
            }
            _ => {}
        }
        self.nodes[id.index()].parent = None;
    }

    /// Replaces the direct text content of an element: all existing text
    /// children are removed and, when `text` is non-empty, a single new
    /// text node is appended. Element children are untouched.
    ///
    /// # Panics
    /// Panics if `id` is not an element.
    pub fn set_text(&mut self, id: NodeId, text: &str) {
        let old_text: Vec<NodeId> = self
            .children(id)
            .iter()
            .copied()
            .filter(|c| self.is_text(*c))
            .collect();
        match &mut self.nodes[id.index()].kind {
            NodeKind::Element { children, .. } => {
                children.retain(|c| !old_text.contains(c));
            }
            // dxlint: allow(no-panic) — node-kind misuse is a caller bug; the builder API is infallible by contract
            _ => panic!("set_text on non-element node"),
        }
        for t in old_text {
            self.nodes[t.index()].parent = None;
        }
        if !text.is_empty() {
            self.add_text(id, text);
        }
    }

    /// Parses an XML fragment (one element with arbitrary content) and
    /// appends a deep copy of it under `parent`, returning the id of the
    /// new element. The fragment must be a well-formed document on its
    /// own, e.g. `<movie><title>Signs</title></movie>`.
    pub fn append_xml(&mut self, parent: NodeId, xml: &str) -> Result<NodeId, XmlError> {
        let fragment = Document::parse(xml)?;
        let root = fragment
            .root_element()
            .ok_or_else(|| XmlError::schema("fragment has no root element"))?;
        Ok(self.graft(parent, &fragment, root))
    }

    /// Deep-copies `node` (from `source`) under `parent` of `self`.
    fn graft(&mut self, parent: NodeId, source: &Document, node: NodeId) -> NodeId {
        let kind = match &source.node(node).kind {
            NodeKind::Element {
                name, attributes, ..
            } => NodeKind::Element {
                name: name.clone(),
                attributes: attributes.clone(),
                children: Vec::new(),
            },
            NodeKind::Text(t) => NodeKind::Text(t.clone()),
            NodeKind::Comment(t) => NodeKind::Comment(t.clone()),
            NodeKind::ProcessingInstruction { target, data } => NodeKind::ProcessingInstruction {
                target: target.clone(),
                data: data.clone(),
            },
            NodeKind::Document { .. } => unreachable!("graft starts below the document node"),
        };
        let copied = self.push_node(parent, kind);
        for child in source.children(node).to_vec() {
            self.graft(copied, source, child);
        }
        copied
    }
}

impl Default for Document {
    fn default() -> Self {
        Document::empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn movie_doc() -> Document {
        Document::parse(
            "<moviedoc>\
               <movie><title>The Matrix</title><year>1999</year>\
                 <actor><name>Keanu Reeves</name><role>Neo</role></actor>\
                 <actor><name>L. Fishburne</name><role>Morpheus</role></actor>\
               </movie>\
               <movie><title>Signs</title><year>2002</year></movie>\
             </moviedoc>",
        )
        .unwrap()
    }

    #[test]
    fn builder_roundtrip() {
        let mut doc = Document::with_root("cds");
        let cd = doc.add_element(doc.root_element().unwrap(), "disc");
        doc.add_text_element(cd, "title", "Blue Train");
        doc.set_attr(cd, "id", "42");
        assert_eq!(doc.attr(cd, "id"), Some("42"));
        assert_eq!(
            doc.to_xml(),
            "<cds><disc id=\"42\"><title>Blue Train</title></disc></cds>"
        );
    }

    #[test]
    fn root_element_and_names() {
        let doc = movie_doc();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), Some("moviedoc"));
        assert_eq!(doc.child_elements(root).count(), 2);
    }

    #[test]
    fn ancestors_and_depth() {
        let doc = movie_doc();
        let names = doc.select("/moviedoc/movie/actor/name").unwrap();
        assert_eq!(names.len(), 2);
        let anc: Vec<_> = doc
            .ancestors(names[0])
            .map(|a| doc.name(a).unwrap().to_string())
            .collect();
        assert_eq!(anc, vec!["actor", "movie", "moviedoc"]);
        assert_eq!(doc.depth(names[0]), 3);
        let root = doc.root_element().unwrap();
        assert_eq!(doc.depth(root), 0);
    }

    #[test]
    fn breadth_first_order_matches_hkd() {
        let doc = movie_doc();
        let movie = doc.select("/moviedoc/movie").unwrap()[0];
        let bfs: Vec<_> = doc
            .breadth_first_elements(movie)
            .iter()
            .map(|n| doc.name(*n).unwrap().to_string())
            .collect();
        // Level 1 first (title, year, actor, actor), then level 2.
        assert_eq!(
            bfs,
            vec!["title", "year", "actor", "actor", "name", "role", "name", "role"]
        );
    }

    #[test]
    fn descendants_within_radius() {
        let doc = movie_doc();
        let movie = doc.select("/moviedoc/movie").unwrap()[0];
        let r1: Vec<_> = doc
            .descendants_within(movie, 1)
            .iter()
            .map(|n| doc.name(*n).unwrap().to_string())
            .collect();
        assert_eq!(r1, vec!["title", "year", "actor", "actor"]);
        assert_eq!(doc.descendants_within(movie, 2).len(), 8);
        assert_eq!(doc.descendants_within(movie, 0).len(), 0);
        // Radius larger than tree depth saturates.
        assert_eq!(doc.descendants_within(movie, 99).len(), 8);
    }

    #[test]
    fn direct_text_vs_text_content() {
        let doc = movie_doc();
        let movie = doc.select("/moviedoc/movie").unwrap()[0];
        assert_eq!(doc.direct_text(movie), None); // complex content
        let title = doc.child_by_name(movie, "title").unwrap();
        assert_eq!(doc.direct_text(title).as_deref(), Some("The Matrix"));
        assert!(doc.text_content(movie).contains("Keanu Reeves"));
    }

    #[test]
    fn absolute_paths_have_positions() {
        let doc = movie_doc();
        let actors = doc.select("/moviedoc/movie/actor").unwrap();
        assert_eq!(
            doc.absolute_path(actors[1]),
            "/moviedoc[1]/movie[1]/actor[2]"
        );
        assert_eq!(doc.name_path(actors[1]), "/moviedoc/movie/actor");
    }

    #[test]
    fn empty_document() {
        let doc = Document::empty();
        assert!(doc.is_empty());
        assert_eq!(doc.root_element(), None);
        assert_eq!(doc.all_elements().len(), 0);
    }

    #[test]
    fn sibling_position_counts_same_name_only() {
        let doc = Document::parse("<r><a/><b/><a/><a/></r>").unwrap();
        let root = doc.root_element().unwrap();
        let kids: Vec<_> = doc.child_elements(root).collect();
        assert_eq!(doc.sibling_position(kids[0]), 1); // first a
        assert_eq!(doc.sibling_position(kids[1]), 1); // only b
        assert_eq!(doc.sibling_position(kids[2]), 2); // second a
        assert_eq!(doc.sibling_position(kids[3]), 3); // third a
    }

    #[test]
    #[should_panic(expected = "non-element")]
    fn set_attr_on_text_panics() {
        let mut doc = Document::with_root("r");
        let t = doc.add_text(doc.root_element().unwrap(), "x");
        doc.set_attr(t, "a", "b");
    }

    #[test]
    fn detach_removes_subtree_from_traversal_and_serialisation() {
        let mut doc = movie_doc();
        let movies = doc.select("/moviedoc/movie").unwrap();
        doc.detach(movies[0]);
        assert_eq!(doc.select("/moviedoc/movie").unwrap().len(), 1);
        assert!(!doc.to_xml().contains("The Matrix"));
        // The surviving movie now has sibling position 1.
        let left = doc.select("/moviedoc/movie").unwrap()[0];
        assert_eq!(doc.absolute_path(left), "/moviedoc[1]/movie[1]");
        // Detaching again is a no-op.
        doc.detach(movies[0]);
        assert_eq!(doc.select("/moviedoc/movie").unwrap().len(), 1);
    }

    #[test]
    fn set_text_replaces_direct_text_only() {
        let mut doc = Document::parse("<r><m>old<t>keep</t>tail</m></r>").unwrap();
        let m = doc.select("/r/m").unwrap()[0];
        doc.set_text(m, "new");
        assert_eq!(doc.direct_text(m).as_deref(), Some("new"));
        let t = doc.child_by_name(m, "t").unwrap();
        assert_eq!(doc.direct_text(t).as_deref(), Some("keep"));
        // Clearing text yields a text-less element.
        doc.set_text(m, "");
        assert_eq!(doc.direct_text(m), None);
        assert_eq!(doc.to_xml(), "<r><m><t>keep</t></m></r>");
    }

    #[test]
    fn append_xml_grafts_a_fragment() {
        let mut doc = movie_doc();
        let root = doc.root_element().unwrap();
        let new = doc
            .append_xml(
                root,
                "<movie year=\"1988\"><title>Distant Echo</title>\
                 <actor><name>Nobody Atall</name></actor></movie>",
            )
            .unwrap();
        assert_eq!(doc.name(new), Some("movie"));
        assert_eq!(doc.attr(new, "year"), Some("1988"));
        assert_eq!(doc.select("/moviedoc/movie").unwrap().len(), 3);
        assert_eq!(
            doc.select("/moviedoc/movie/actor/name").unwrap().len(),
            3,
            "nested elements graft too"
        );
        // A mutated document serialises and reparses to the same tree.
        let reparsed = Document::parse(&doc.to_xml()).unwrap();
        assert_eq!(reparsed.select("/moviedoc/movie/title").unwrap().len(), 3);
        assert!(doc.append_xml(root, "<broken").is_err());
    }
}
