//! Error type shared by the parser, XPath evaluator, and schema reader.

use std::fmt;

/// Errors produced anywhere in the XML substrate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum XmlError {
    /// Malformed document text. Carries a human-readable message and the
    /// 1-based line/column where parsing failed.
    Parse {
        /// What went wrong.
        message: String,
        /// 1-based line number.
        line: usize,
        /// 1-based column number (in characters).
        column: usize,
    },
    /// Malformed XPath expression.
    XPath {
        /// What went wrong.
        message: String,
    },
    /// Malformed or unsupported schema construct.
    Schema {
        /// What went wrong.
        message: String,
    },
    /// An operation was applied to a [`crate::NodeId`] of the wrong kind
    /// (e.g. asking for the attributes of a text node).
    NodeKind {
        /// What went wrong.
        message: String,
    },
}

impl XmlError {
    pub(crate) fn parse(message: impl Into<String>, line: usize, column: usize) -> Self {
        XmlError::Parse {
            message: message.into(),
            line,
            column,
        }
    }

    pub(crate) fn xpath(message: impl Into<String>) -> Self {
        XmlError::XPath {
            message: message.into(),
        }
    }

    pub(crate) fn schema(message: impl Into<String>) -> Self {
        XmlError::Schema {
            message: message.into(),
        }
    }
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            XmlError::Parse {
                message,
                line,
                column,
            } => write!(f, "XML parse error at {line}:{column}: {message}"),
            XmlError::XPath { message } => write!(f, "XPath error: {message}"),
            XmlError::Schema { message } => write!(f, "schema error: {message}"),
            XmlError::NodeKind { message } => write!(f, "node kind error: {message}"),
        }
    }
}

impl std::error::Error for XmlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = XmlError::parse("unexpected '<'", 3, 14);
        assert_eq!(e.to_string(), "XML parse error at 3:14: unexpected '<'");
    }

    #[test]
    fn display_other_variants() {
        assert!(XmlError::xpath("bad step").to_string().contains("bad step"));
        assert!(XmlError::schema("oops").to_string().starts_with("schema"));
    }
}
