//! Entity escaping and unescaping.
//!
//! Handles the five predefined XML entities plus decimal (`&#65;`) and
//! hexadecimal (`&#x41;`) character references.

use crate::error::XmlError;

/// Escapes text content: `&`, `<`, `>` are replaced by entities.
///
/// # Examples
/// ```
/// use dogmatix_xml::escape::escape_text;
/// assert_eq!(escape_text("a < b & c"), "a &lt; b &amp; c");
/// ```
pub fn escape_text(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            _ => out.push(c),
        }
    }
    out
}

/// Escapes an attribute value (additionally escapes both quote kinds).
///
/// # Examples
/// ```
/// use dogmatix_xml::escape::escape_attr;
/// assert_eq!(escape_attr(r#"say "hi" & 'bye'"#),
///            "say &quot;hi&quot; &amp; &apos;bye&apos;");
/// ```
pub fn escape_attr(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(c),
        }
    }
    out
}

/// Resolves one entity reference given the text *after* the `&`, returning
/// the decoded char and the number of input chars consumed (excluding the
/// `&` itself, including the `;`).
pub(crate) fn resolve_entity(
    rest: &str,
    line: usize,
    column: usize,
) -> Result<(char, usize), XmlError> {
    let semi = rest
        .char_indices()
        .take(12)
        .find(|(_, c)| *c == ';')
        .map(|(i, _)| i)
        .ok_or_else(|| XmlError::parse("unterminated entity reference", line, column))?;
    let name = &rest[..semi];
    let consumed = semi + 1;
    let c = match name {
        "lt" => '<',
        "gt" => '>',
        "amp" => '&',
        "quot" => '"',
        "apos" => '\'',
        _ => {
            if let Some(hex) = name.strip_prefix("#x").or_else(|| name.strip_prefix("#X")) {
                u32::from_str_radix(hex, 16)
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| {
                        XmlError::parse(
                            format!("invalid character reference '&{name};'"),
                            line,
                            column,
                        )
                    })?
            } else if let Some(dec) = name.strip_prefix('#') {
                dec.parse::<u32>()
                    .ok()
                    .and_then(char::from_u32)
                    .ok_or_else(|| {
                        XmlError::parse(
                            format!("invalid character reference '&{name};'"),
                            line,
                            column,
                        )
                    })?
            } else {
                return Err(XmlError::parse(
                    format!("unknown entity '&{name};'"),
                    line,
                    column,
                ));
            }
        }
    };
    Ok((c, consumed))
}

/// Unescapes all entity references in `s`.
///
/// # Examples
/// ```
/// use dogmatix_xml::escape::unescape;
/// assert_eq!(unescape("a &lt; b &#x41;&#66;").unwrap(), "a < b AB");
/// assert!(unescape("&bogus;").is_err());
/// ```
pub fn unescape(s: &str) -> Result<String, XmlError> {
    let mut out = String::with_capacity(s.len());
    let mut rest = s;
    while let Some(pos) = rest.find('&') {
        out.push_str(&rest[..pos]);
        let after = &rest[pos + 1..];
        let (c, consumed) = resolve_entity(after, 0, 0)?;
        out.push(c);
        rest = &after[consumed..];
    }
    out.push_str(rest);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_text() {
        let texts = ["plain", "a<b", "x & y", "1 > 0", "quotes \" '"];
        for t in texts {
            assert_eq!(unescape(&escape_text(t)).unwrap(), t);
            assert_eq!(unescape(&escape_attr(t)).unwrap(), t);
        }
    }

    #[test]
    fn numeric_references() {
        assert_eq!(unescape("&#65;").unwrap(), "A");
        assert_eq!(unescape("&#x41;").unwrap(), "A");
        assert_eq!(unescape("&#xE4;").unwrap(), "ä");
    }

    #[test]
    fn invalid_references_error() {
        assert!(unescape("&#xFFFFFFFF;").is_err());
        assert!(unescape("&nosuch;").is_err());
        assert!(unescape("&unterminated").is_err());
    }

    #[test]
    fn empty_and_no_entities() {
        assert_eq!(unescape("").unwrap(), "");
        assert_eq!(unescape("no entities").unwrap(), "no entities");
    }
}
