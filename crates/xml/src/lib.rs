#![warn(missing_docs)]

//! # dogmatix-xml
//!
//! From-scratch XML substrate for the DogmatiX reproduction
//! (Weis & Naumann, SIGMOD 2005). The paper's algorithm consumes an XML
//! document, an XML Schema, and XPath-based mappings; this crate provides
//! all three layers without external dependencies:
//!
//! * [`dom`] — an arena-allocated document tree ([`Document`], [`NodeId`])
//!   with the navigation primitives DogmatiX needs: ancestors, depth-first
//!   and breadth-first descendants, text content, and *absolute XPaths with
//!   positional predicates* (the paper's duplicate clusters identify
//!   elements by absolute XPath, Fig. 3),
//! * [`parser`] — a hand-written, position-tracking XML parser (elements,
//!   attributes, text, CDATA, comments, processing instructions, DOCTYPE
//!   skipping, predefined and numeric entities),
//! * [`serializer`] — compact and pretty-printing writers with correct
//!   escaping (round-trips with the parser),
//! * [`xpath`] — the XPath subset the paper's generated queries use:
//!   selection and projection down the tree (`/`, `//`, `*`, `.`, `..`,
//!   `@attr`, positional and value predicates, `text()`),
//! * [`schema`] — an XML Schema (XSD) subset: element declarations,
//!   sequence/choice/all content, `minOccurs`/`maxOccurs`, `nillable`,
//!   built-in simple types, plus schema *inference* from instance documents
//!   for the schemaless case.
//!
//! ```
//! use dogmatix_xml::Document;
//!
//! let doc = Document::parse("<movies><movie><title>Signs</title></movie></movies>")?;
//! let titles = doc.select("/movies/movie/title")?;
//! assert_eq!(doc.text_content(titles[0]), "Signs");
//! assert_eq!(doc.absolute_path(titles[0]), "/movies[1]/movie[1]/title[1]");
//! # Ok::<(), dogmatix_xml::XmlError>(())
//! ```

pub mod dom;
pub mod error;
pub mod escape;
pub mod parser;
pub mod schema;
pub mod serializer;
pub mod treedist;
pub mod xpath;

pub use dom::{Document, Node, NodeId, NodeKind};
pub use error::XmlError;
pub use schema::{ContentModel, Schema, SchemaNodeId, SimpleType};
pub use xpath::Path;
