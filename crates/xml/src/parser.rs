//! Hand-written, position-tracking XML parser.
//!
//! Supported grammar (sufficient for data-centric XML and the XSD subset):
//! XML declaration, internal-subset-free DOCTYPE (skipped), elements with
//! attributes (single or double quoted), text with predefined/numeric
//! entity references, CDATA sections (folded into text), comments, and
//! processing instructions. Namespace prefixes are kept as part of names
//! (no URI resolution — the DogmatiX inputs never need it).
//!
//! Not supported (rejected with a clear error): internal DTD subsets with
//! entity declarations, and documents with multiple root elements.

use crate::dom::{Document, NodeId, NodeKind, DOCUMENT_NODE};
use crate::error::XmlError;
use crate::escape::resolve_entity;

/// Maximum element nesting depth. The parser (and serializer) recurse per
/// level; the bound keeps hostile inputs from overflowing the stack and
/// is far beyond any data-centric document (the paper's corpora nest 3–6
/// levels).
pub const MAX_DEPTH: usize = 256;

/// Parses a complete document. Called through [`Document::parse`].
pub fn parse_document(input: &str) -> Result<Document, XmlError> {
    let mut p = Parser::new(input);
    p.parse()
}

struct Parser<'a> {
    input: &'a str,
    /// Byte offset into `input`.
    pos: usize,
    line: usize,
    /// 1-based column in characters.
    column: usize,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            line: 1,
            column: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> XmlError {
        XmlError::parse(message, self.line, self.column)
    }

    fn rest(&self) -> &'a str {
        &self.input[self.pos..]
    }

    fn peek(&self) -> Option<char> {
        self.rest().chars().next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += c.len_utf8();
        if c == '\n' {
            self.line += 1;
            self.column = 1;
        } else {
            self.column += 1;
        }
        Some(c)
    }

    fn eat(&mut self, prefix: &str) -> bool {
        if self.rest().starts_with(prefix) {
            for _ in prefix.chars() {
                self.bump();
            }
            true
        } else {
            false
        }
    }

    fn expect(&mut self, prefix: &str) -> Result<(), XmlError> {
        if self.eat(prefix) {
            Ok(())
        } else {
            let found: String = self.rest().chars().take(8).collect();
            Err(self.err(format!("expected '{prefix}', found '{found}'")))
        }
    }

    fn skip_whitespace(&mut self) {
        while matches!(self.peek(), Some(c) if c.is_whitespace()) {
            self.bump();
        }
    }

    fn parse(&mut self) -> Result<Document, XmlError> {
        let mut doc = Document::empty();
        self.skip_bom();
        self.skip_prolog()?;
        let mut seen_root = false;
        loop {
            self.skip_whitespace();
            if self.rest().is_empty() {
                break;
            }
            if self.rest().starts_with("<!--") {
                let text = self.parse_comment()?;
                doc_append(&mut doc, DOCUMENT_NODE, NodeKind::Comment(text));
            } else if self.rest().starts_with("<?") {
                let (target, data) = self.parse_pi()?;
                doc_append(
                    &mut doc,
                    DOCUMENT_NODE,
                    NodeKind::ProcessingInstruction { target, data },
                );
            } else if self.rest().starts_with('<') {
                if seen_root {
                    return Err(self.err("multiple root elements"));
                }
                self.parse_element(&mut doc, DOCUMENT_NODE, 0)?;
                seen_root = true;
            } else {
                return Err(self.err("unexpected content outside root element"));
            }
        }
        if !seen_root {
            return Err(self.err("document has no root element"));
        }
        Ok(doc)
    }

    fn skip_bom(&mut self) {
        self.eat("\u{feff}");
    }

    fn skip_prolog(&mut self) -> Result<(), XmlError> {
        self.skip_whitespace();
        if self.rest().starts_with("<?xml") {
            let end = self
                .rest()
                .find("?>")
                .ok_or_else(|| self.err("unterminated XML declaration"))?;
            for _ in self.rest()[..end + 2].chars().collect::<Vec<_>>() {
                self.bump();
            }
        }
        self.skip_whitespace();
        // Skip comments/PIs interleaved before the DOCTYPE or root.
        while self.rest().starts_with("<!--") || self.rest().starts_with("<?") {
            if self.rest().starts_with("<!--") {
                self.parse_comment()?;
            } else {
                self.parse_pi()?;
            }
            self.skip_whitespace();
        }
        if self.rest().starts_with("<!DOCTYPE") {
            self.skip_doctype()?;
            self.skip_whitespace();
        }
        Ok(())
    }

    fn skip_doctype(&mut self) -> Result<(), XmlError> {
        self.expect("<!DOCTYPE")?;
        let mut depth = 1usize;
        while depth > 0 {
            match self.bump() {
                Some('<') => depth += 1,
                Some('>') => depth -= 1,
                Some('[') => {
                    return Err(self.err("internal DTD subsets are not supported"));
                }
                Some(_) => {}
                None => return Err(self.err("unterminated DOCTYPE")),
            }
        }
        Ok(())
    }

    fn parse_name(&mut self) -> Result<String, XmlError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if is_name_start(c) => {
                self.bump();
            }
            _ => return Err(self.err("expected a name")),
        }
        while matches!(self.peek(), Some(c) if is_name_char(c)) {
            self.bump();
        }
        Ok(self.input[start..self.pos].to_string())
    }

    fn parse_attr_value(&mut self) -> Result<String, XmlError> {
        let quote = match self.peek() {
            Some(q @ ('"' | '\'')) => {
                self.bump();
                q
            }
            _ => return Err(self.err("expected quoted attribute value")),
        };
        let mut out = String::new();
        loop {
            match self.peek() {
                Some(c) if c == quote => {
                    self.bump();
                    break;
                }
                Some('&') => {
                    self.bump();
                    let (line, column) = (self.line, self.column);
                    let (c, consumed) = resolve_entity(self.rest(), line, column)?;
                    out.push(c);
                    for _ in 0..consumed {
                        self.bump();
                    }
                }
                Some('<') => return Err(self.err("'<' not allowed in attribute value")),
                Some(c) => {
                    out.push(c);
                    self.bump();
                }
                None => return Err(self.err("unterminated attribute value")),
            }
        }
        Ok(out)
    }

    fn parse_element(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        depth: usize,
    ) -> Result<NodeId, XmlError> {
        if depth >= MAX_DEPTH {
            return Err(self.err(format!(
                "maximum element nesting depth ({MAX_DEPTH}) exceeded"
            )));
        }
        self.expect("<")?;
        let name = self.parse_name()?;
        let mut attributes: Vec<(String, String)> = Vec::new();
        loop {
            self.skip_whitespace();
            match self.peek() {
                Some('>') => {
                    self.bump();
                    break;
                }
                Some('/') => {
                    self.bump();
                    self.expect(">")?;
                    return Ok(doc_append(
                        doc,
                        parent,
                        NodeKind::Element {
                            name,
                            attributes,
                            children: Vec::new(),
                        },
                    ));
                }
                Some(c) if is_name_start(c) => {
                    let attr_name = self.parse_name()?;
                    if attributes.iter().any(|(n, _)| *n == attr_name) {
                        return Err(self.err(format!("duplicate attribute '{attr_name}'")));
                    }
                    self.skip_whitespace();
                    self.expect("=")?;
                    self.skip_whitespace();
                    let value = self.parse_attr_value()?;
                    attributes.push((attr_name, value));
                }
                _ => return Err(self.err("malformed start tag")),
            }
        }
        let el = doc_append(
            doc,
            parent,
            NodeKind::Element {
                name: name.clone(),
                attributes,
                children: Vec::new(),
            },
        );
        self.parse_content(doc, el, &name, depth)?;
        Ok(el)
    }

    fn parse_content(
        &mut self,
        doc: &mut Document,
        parent: NodeId,
        parent_name: &str,
        depth: usize,
    ) -> Result<(), XmlError> {
        let mut text = String::new();
        loop {
            if self.rest().starts_with("</") {
                flush_text(doc, parent, &mut text);
                self.expect("</")?;
                let name = self.parse_name()?;
                if name != parent_name {
                    return Err(self.err(format!(
                        "mismatched end tag: expected </{parent_name}>, found </{name}>"
                    )));
                }
                self.skip_whitespace();
                self.expect(">")?;
                return Ok(());
            } else if self.rest().starts_with("<!--") {
                flush_text(doc, parent, &mut text);
                let comment = self.parse_comment()?;
                doc_append(doc, parent, NodeKind::Comment(comment));
            } else if self.rest().starts_with("<![CDATA[") {
                // CDATA folds into the surrounding text run.
                let data = self.parse_cdata()?;
                text.push_str(&data);
            } else if self.rest().starts_with("<?") {
                flush_text(doc, parent, &mut text);
                let (target, data) = self.parse_pi()?;
                doc_append(
                    doc,
                    parent,
                    NodeKind::ProcessingInstruction { target, data },
                );
            } else if self.rest().starts_with('<') {
                flush_text(doc, parent, &mut text);
                self.parse_element(doc, parent, depth + 1)?;
            } else {
                match self.peek() {
                    Some('&') => {
                        self.bump();
                        let (line, column) = (self.line, self.column);
                        let (c, consumed) = resolve_entity(self.rest(), line, column)?;
                        text.push(c);
                        for _ in 0..consumed {
                            self.bump();
                        }
                    }
                    Some(c) => {
                        text.push(c);
                        self.bump();
                    }
                    None => return Err(self.err(format!("unterminated element <{parent_name}>"))),
                }
            }
        }
    }

    fn parse_comment(&mut self) -> Result<String, XmlError> {
        self.expect("<!--")?;
        let end = self
            .rest()
            .find("-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        let text = self.rest()[..end].to_string();
        for _ in 0..text.chars().count() + 3 {
            self.bump();
        }
        Ok(text)
    }

    fn parse_cdata(&mut self) -> Result<String, XmlError> {
        self.expect("<![CDATA[")?;
        let end = self
            .rest()
            .find("]]>")
            .ok_or_else(|| self.err("unterminated CDATA section"))?;
        let text = self.rest()[..end].to_string();
        for _ in 0..text.chars().count() + 3 {
            self.bump();
        }
        Ok(text)
    }

    fn parse_pi(&mut self) -> Result<(String, String), XmlError> {
        self.expect("<?")?;
        let target = self.parse_name()?;
        let end = self
            .rest()
            .find("?>")
            .ok_or_else(|| self.err("unterminated processing instruction"))?;
        let data = self.rest()[..end].trim().to_string();
        let skip_chars = self.rest()[..end + 2].chars().count();
        for _ in 0..skip_chars {
            self.bump();
        }
        Ok((target, data))
    }
}

fn flush_text(doc: &mut Document, parent: NodeId, text: &mut String) {
    if !text.is_empty() {
        doc_append(doc, parent, NodeKind::Text(std::mem::take(text)));
    }
}

fn doc_append(doc: &mut Document, parent: NodeId, kind: NodeKind) -> NodeId {
    let id = NodeId(doc.nodes.len() as u32);
    doc.nodes.push(crate::dom::Node {
        parent: Some(parent),
        kind,
    });
    match &mut doc.nodes[parent.index()].kind {
        NodeKind::Document { children } | NodeKind::Element { children, .. } => children.push(id),
        _ => unreachable!("parents are always containers"),
    }
    id
}

fn is_name_start(c: char) -> bool {
    c.is_alphabetic() || c == '_' || c == ':'
}

fn is_name_char(c: char) -> bool {
    is_name_start(c) || c.is_ascii_digit() || c == '-' || c == '.'
}

#[cfg(test)]
mod tests {
    use crate::dom::Document;

    #[test]
    fn minimal_document() {
        let doc = Document::parse("<a/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("a"));
    }

    #[test]
    fn declaration_and_doctype_skipped() {
        let doc = Document::parse(
            "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n<!DOCTYPE moviedoc SYSTEM \"m.dtd\">\n<moviedoc/>",
        )
        .unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("moviedoc"));
    }

    #[test]
    fn attributes_both_quote_kinds() {
        let doc = Document::parse(r#"<m a="1" b='two' c="with &amp; entity"/>"#).unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.attr(root, "a"), Some("1"));
        assert_eq!(doc.attr(root, "b"), Some("two"));
        assert_eq!(doc.attr(root, "c"), Some("with & entity"));
    }

    #[test]
    fn entities_in_text() {
        let doc = Document::parse("<t>a &lt; b &amp; c &#65;</t>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "a < b & c A");
    }

    #[test]
    fn cdata_folds_into_text() {
        let doc = Document::parse("<t>pre <![CDATA[<raw> & stuff]]> post</t>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.text_content(root), "pre <raw> & stuff post");
    }

    #[test]
    fn comments_and_pis_preserved() {
        let doc = Document::parse("<r><!-- note --><?proc data?><x/></r>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.children(root).len(), 3);
    }

    #[test]
    fn nested_structure() {
        let doc = Document::parse("<a><b><c>deep</c></b><b><c>two</c></b></a>").unwrap();
        assert_eq!(doc.select("/a/b/c").unwrap().len(), 2);
    }

    #[test]
    fn mismatched_tags_rejected() {
        let e = Document::parse("<a><b></a></b>").unwrap_err();
        assert!(e.to_string().contains("mismatched end tag"), "{e}");
    }

    #[test]
    fn unterminated_rejected() {
        assert!(Document::parse("<a><b>").is_err());
        assert!(Document::parse("<a").is_err());
        assert!(Document::parse("<a attr=>").is_err());
    }

    #[test]
    fn multiple_roots_rejected() {
        assert!(Document::parse("<a/><b/>").is_err());
    }

    #[test]
    fn no_root_rejected() {
        assert!(Document::parse("").is_err());
        assert!(Document::parse("<!-- only a comment -->").is_err());
    }

    #[test]
    fn duplicate_attribute_rejected() {
        assert!(Document::parse(r#"<a x="1" x="2"/>"#).is_err());
    }

    #[test]
    fn text_outside_root_rejected() {
        assert!(Document::parse("stray<a/>").is_err());
    }

    #[test]
    fn error_position_reported() {
        let e = Document::parse("<a>\n  <b attr=oops/>\n</a>").unwrap_err();
        match e {
            crate::XmlError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected error {other:?}"),
        }
    }

    #[test]
    fn unicode_content_and_names() {
        let doc = Document::parse("<straße><ü>ä</ü></straße>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.name(root), Some("straße"));
        assert_eq!(doc.text_content(root), "ä");
    }

    #[test]
    fn whitespace_only_text_kept_in_tree_but_direct_text_none() {
        let doc = Document::parse("<a>\n  <b/>\n</a>").unwrap();
        let root = doc.root_element().unwrap();
        assert_eq!(doc.direct_text(root), None);
    }

    #[test]
    fn internal_dtd_subset_rejected_with_clear_message() {
        let e = Document::parse("<!DOCTYPE r [<!ENTITY x \"y\">]><r/>").unwrap_err();
        assert!(e.to_string().contains("internal DTD"), "{e}");
    }

    #[test]
    fn bom_is_skipped() {
        let doc = Document::parse("\u{feff}<a/>").unwrap();
        assert_eq!(doc.name(doc.root_element().unwrap()), Some("a"));
    }
}
