//! Schema inference from instance documents.
//!
//! The paper assumes an XML Schema is given, but much real-world XML is
//! schemaless. This module derives a [`Schema`] from one instance document
//! so the DogmatiX heuristics still apply:
//!
//! * **structure** — one schema node per distinct element name-path,
//!   children ordered by first appearance,
//! * **cardinalities** — `minOccurs = 0` if some parent instance lacks the
//!   child, `maxOccurs = unbounded` if any parent instance repeats it,
//! * **content model** — simple / complex / mixed / empty from observed
//!   text and element children,
//! * **simple types** — guessed from the observed values (integer → gYear
//!   heuristic → date → decimal → boolean → string).

use super::model::{ContentModel, MaxOccurs, Schema, SchemaNodeId, SimpleType};
use crate::dom::{Document, NodeId};
use crate::error::XmlError;
use std::collections::HashMap;

/// Infers a schema from an instance document. Fails on an empty document.
pub fn infer(doc: &Document) -> Result<Schema, XmlError> {
    let root = doc
        .root_element()
        .ok_or_else(|| XmlError::schema("cannot infer a schema from an empty document"))?;

    let mut stats: HashMap<String, PathStats> = HashMap::new();
    collect(doc, root, &mut stats);

    let root_name = doc
        .name(root)
        .ok_or_else(|| XmlError::schema("document root element has no name"))?
        .to_string();
    let root_path = format!("/{root_name}");
    let root_stats = &stats[&root_path];
    let mut schema = Schema::with_root(&root_name, ContentModel::Empty);
    schema.nodes[0].content = root_stats.content_model();
    let root_id = schema.root();
    build(&mut schema, root_id, &root_path, &stats);
    Ok(schema)
}

#[derive(Default)]
struct PathStats {
    /// Child element names by first appearance.
    child_order: Vec<String>,
    /// Per-instance counts: for each instance of this path, how many of
    /// each child name it had.
    instances: usize,
    child_presence: HashMap<String, ChildStats>,
    /// Observed direct text values.
    values: Vec<String>,
    has_element_children: bool,
    has_text: bool,
}

#[derive(Default)]
struct ChildStats {
    /// Number of parent instances containing at least one occurrence.
    present_in: usize,
    /// Maximum occurrences within a single parent instance.
    max_per_parent: usize,
}

impl PathStats {
    fn content_model(&self) -> ContentModel {
        match (self.has_text, self.has_element_children) {
            (true, true) => ContentModel::Mixed,
            (true, false) => ContentModel::Simple(guess_type(&self.values)),
            (false, true) => ContentModel::Complex,
            (false, false) => ContentModel::Empty,
        }
    }
}

fn collect(doc: &Document, el: NodeId, stats: &mut HashMap<String, PathStats>) {
    let path = doc.name_path(el);
    let mut counts: HashMap<String, usize> = HashMap::new();
    let mut order: Vec<String> = Vec::new();
    for child in doc.child_elements(el) {
        // Child elements always carry a name; skip rather than panic
        // if the DOM invariant is ever broken.
        let Some(name) = doc.name(child).map(str::to_string) else {
            continue;
        };
        if !counts.contains_key(&name) {
            order.push(name.clone());
        }
        *counts.entry(name).or_insert(0) += 1;
        collect(doc, child, stats);
    }
    let entry = stats.entry(path).or_default();
    entry.instances += 1;
    for name in order {
        if !entry.child_order.contains(&name) {
            entry.child_order.push(name.clone());
        }
    }
    for (name, count) in counts {
        let cs = entry.child_presence.entry(name).or_default();
        cs.present_in += 1;
        cs.max_per_parent = cs.max_per_parent.max(count);
    }
    if let Some(text) = doc.direct_text(el) {
        entry.has_text = true;
        entry.values.push(text);
    }
    if doc.child_elements(el).next().is_some() {
        entry.has_element_children = true;
    }
}

fn build(schema: &mut Schema, node: SchemaNodeId, path: &str, stats: &HashMap<String, PathStats>) {
    let Some(ps) = stats.get(path) else { return };
    let child_order = ps.child_order.clone();
    for child_name in child_order {
        let cs = &stats[path].child_presence[&child_name];
        let min_occurs = if cs.present_in == stats[path].instances {
            1
        } else {
            0
        };
        let max_occurs = if cs.max_per_parent > 1 {
            MaxOccurs::Unbounded
        } else {
            MaxOccurs::Bounded(1)
        };
        let child_path = format!("{path}/{child_name}");
        let content = stats
            .get(&child_path)
            .map(|c| c.content_model())
            .unwrap_or(ContentModel::Empty);
        let child_node =
            schema.add_child(node, &child_name, min_occurs, max_occurs, false, content);
        build(schema, child_node, &child_path, stats);
    }
}

/// Guesses a simple type from observed values: every value must fit the
/// type, otherwise fall through towards string.
fn guess_type(values: &[String]) -> SimpleType {
    if values.is_empty() {
        return SimpleType::String;
    }
    if values.iter().all(|v| is_year(v)) {
        return SimpleType::GYear;
    }
    if values.iter().all(|v| v.trim().parse::<i64>().is_ok()) {
        return SimpleType::Integer;
    }
    if values.iter().all(|v| is_date(v)) {
        return SimpleType::Date;
    }
    if values.iter().all(|v| v.trim().parse::<f64>().is_ok()) {
        return SimpleType::Decimal;
    }
    if values
        .iter()
        .all(|v| matches!(v.trim(), "true" | "false" | "0" | "1"))
    {
        return SimpleType::Boolean;
    }
    SimpleType::String
}

fn is_year(v: &str) -> bool {
    let v = v.trim();
    v.len() == 4 && v.chars().all(|c| c.is_ascii_digit()) && &v[..1] >= "1"
}

fn is_date(v: &str) -> bool {
    let v = v.trim();
    // ISO YYYY-MM-DD or German DD.MM.YYYY (the paper notes Film-Dienst
    // uses different date formats than IMDB).
    let iso = v.len() == 10
        && v.as_bytes()[4] == b'-'
        && v.as_bytes()[7] == b'-'
        && v.chars().enumerate().all(|(i, c)| {
            if i == 4 || i == 7 {
                c == '-'
            } else {
                c.is_ascii_digit()
            }
        });
    let german = v.len() == 10
        && v.as_bytes()[2] == b'.'
        && v.as_bytes()[5] == b'.'
        && v.chars().enumerate().all(|(i, c)| {
            if i == 2 || i == 5 {
                c == '.'
            } else {
                c.is_ascii_digit()
            }
        });
    iso || german
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    fn infer_from(xml: &str) -> Schema {
        Schema::infer(&Document::parse(xml).unwrap()).unwrap()
    }

    #[test]
    fn infers_structure_and_cardinalities() {
        let s = infer_from(
            "<discs>\
               <disc><did>d1</did><artist>A</artist><track>t1</track><track>t2</track></disc>\
               <disc><did>d2</did><track>t3</track></disc>\
             </discs>",
        );
        let disc = s.find_by_path("/discs/disc").unwrap();
        assert_eq!(s.node(disc).max_occurs(), MaxOccurs::Unbounded);
        let did = s.find_by_path("/discs/disc/did").unwrap();
        assert!(s.is_mandatory(did), "did present in every disc");
        assert!(s.is_singleton(did));
        let artist = s.find_by_path("/discs/disc/artist").unwrap();
        assert!(!s.is_mandatory(artist), "artist missing in one disc");
        let track = s.find_by_path("/discs/disc/track").unwrap();
        assert!(!s.is_singleton(track), "track repeats");
    }

    #[test]
    fn infers_content_models() {
        let s = infer_from(
            "<r><simple>text</simple><complex><x>1</x></complex>\
             <mixed>text<x>1</x></mixed><empty/></r>",
        );
        assert!(matches!(
            s.node(s.find_by_path("/r/simple").unwrap()).content(),
            ContentModel::Simple(_)
        ));
        assert_eq!(
            *s.node(s.find_by_path("/r/complex").unwrap()).content(),
            ContentModel::Complex
        );
        assert_eq!(
            *s.node(s.find_by_path("/r/mixed").unwrap()).content(),
            ContentModel::Mixed
        );
        assert_eq!(
            *s.node(s.find_by_path("/r/empty").unwrap()).content(),
            ContentModel::Empty
        );
    }

    #[test]
    fn guesses_types() {
        let s = infer_from(
            "<r><m><year>1999</year><n>123456</n><d>2002-08-02</d>\
                 <g>7.5</g><t>The Matrix</t></m>\
               <m><year>2002</year><n>42</n><d>13.05.2003</d>\
                 <g>8</g><t>Signs</t></m></r>",
        );
        let get = |p: &str| s.node(s.find_by_path(p).unwrap()).content().clone();
        assert_eq!(get("/r/m/year"), ContentModel::Simple(SimpleType::GYear));
        assert_eq!(get("/r/m/n"), ContentModel::Simple(SimpleType::Integer));
        assert_eq!(get("/r/m/d"), ContentModel::Simple(SimpleType::Date));
        assert_eq!(get("/r/m/g"), ContentModel::Simple(SimpleType::Decimal));
        assert_eq!(get("/r/m/t"), ContentModel::Simple(SimpleType::String));
    }

    #[test]
    fn mixed_type_columns_degrade_to_string() {
        let s = infer_from("<r><v>1999</v><v>not a year</v></r>");
        let v = s.find_by_path("/r/v").unwrap();
        assert_eq!(
            *s.node(v).content(),
            ContentModel::Simple(SimpleType::String)
        );
    }

    #[test]
    fn empty_document_errors() {
        let doc = Document::empty();
        assert!(Schema::infer(&doc).is_err());
    }

    #[test]
    fn child_order_is_first_appearance() {
        let s = infer_from("<r><m><b>1</b><a>2</a></m><m><a>3</a><c>4</c></m></r>");
        let m = s.find_by_path("/r/m").unwrap();
        let names: Vec<_> = s
            .children(m)
            .iter()
            .map(|c| s.node(*c).name().to_string())
            .collect();
        assert_eq!(names, vec!["b", "a", "c"]);
    }

    #[test]
    fn inferred_schema_navigates_like_parsed() {
        let s = infer_from(
            "<discs><disc><tracks><title>x</title><title>y</title></tracks></disc></discs>",
        );
        let disc = s.find_by_path("/discs/disc").unwrap();
        assert_eq!(s.descendants_within(disc, 1).len(), 1);
        assert_eq!(s.descendants_within(disc, 2).len(), 2);
        assert_eq!(s.breadth_first(disc).len(), 2);
    }
}
