//! XML Schema (XSD) subset.
//!
//! DogmatiX's description-selection heuristics (Section 4 of the paper)
//! exploit the schema tree: depth on the ancestor/descendant axes, content
//! models (simple/complex/mixed — Condition 1), data types (Condition 2),
//! and cardinalities (`minOccurs`/`maxOccurs`/`nillable` — Conditions 3
//! and 4). This module provides:
//!
//! * [`model`] — the schema tree: [`Schema`], [`SchemaNodeId`],
//!   [`ContentModel`], [`SimpleType`], with the same navigation primitives
//!   as the instance DOM (ancestors, r-distant descendants, breadth-first
//!   order),
//! * [`parser`] — a reader for the XSD subset used by data-centric schemas
//!   (element declarations, sequence/choice/all groups, named and inline
//!   complex types, simple-type restrictions, occurrence attributes),
//! * [`infer`] — schema inference from instance documents, so DogmatiX can
//!   run on schemaless XML (observed cardinalities, content models, and
//!   guessed simple types).

pub mod infer;
pub mod model;
pub mod parser;

pub use model::{ContentModel, MaxOccurs, Schema, SchemaNode, SchemaNodeId, SimpleType};
