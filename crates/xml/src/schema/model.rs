//! The schema tree model.
//!
//! A [`Schema`] is a tree of element declarations mirroring the document
//! structure (recursive types are rejected by the parser, matching the
//! data-centric schemas the paper evaluates on). Node properties carry
//! exactly the information the paper's conditions consume.

use std::collections::VecDeque;
use std::fmt;

/// Handle to a node in a [`Schema`] tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SchemaNodeId(pub(crate) u32);

impl SchemaNodeId {
    /// Arena index of the node.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Built-in simple types we distinguish. Everything the paper's conditions
/// need is whether the type is `xs:string` (Condition 2); the rest are kept
/// for diagnostics and the inference module.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimpleType {
    /// `xs:string` (and `xs:normalizedString`, `xs:token`).
    String,
    /// `xs:date`, `xs:dateTime`.
    Date,
    /// `xs:gYear`.
    GYear,
    /// `xs:integer`, `xs:int`, `xs:long`, `xs:short`.
    Integer,
    /// `xs:decimal`, `xs:float`, `xs:double`.
    Decimal,
    /// `xs:boolean`.
    Boolean,
    /// Any other named simple type.
    Other(String),
}

impl SimpleType {
    /// Maps an XSD type name (with or without prefix) to a [`SimpleType`].
    pub fn from_xsd_name(name: &str) -> SimpleType {
        let local = name.rsplit(':').next().unwrap_or(name);
        match local {
            "string" | "normalizedString" | "token" => SimpleType::String,
            "date" | "dateTime" => SimpleType::Date,
            "gYear" => SimpleType::GYear,
            "integer" | "int" | "long" | "short" | "nonNegativeInteger" | "positiveInteger" => {
                SimpleType::Integer
            }
            "decimal" | "float" | "double" => SimpleType::Decimal,
            "boolean" => SimpleType::Boolean,
            other => SimpleType::Other(other.to_string()),
        }
    }
}

impl fmt::Display for SimpleType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimpleType::String => write!(f, "string"),
            SimpleType::Date => write!(f, "date"),
            SimpleType::GYear => write!(f, "gYear"),
            SimpleType::Integer => write!(f, "integer"),
            SimpleType::Decimal => write!(f, "decimal"),
            SimpleType::Boolean => write!(f, "boolean"),
            SimpleType::Other(n) => write!(f, "{n}"),
        }
    }
}

/// Content model of an element (paper Condition 1: only *simple* and
/// *mixed* elements carry a text node usable as an OD value).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContentModel {
    /// Text only, of the given simple type.
    Simple(SimpleType),
    /// Element children only — no text node.
    Complex,
    /// Both text and element children (`mixed="true"`).
    Mixed,
    /// Declared empty.
    Empty,
}

impl ContentModel {
    /// Whether elements of this model can carry a text node (Condition 1).
    pub fn has_text(&self) -> bool {
        matches!(self, ContentModel::Simple(_) | ContentModel::Mixed)
    }

    /// Whether the element's text is of string type (Condition 2). Mixed
    /// content is treated as string.
    pub fn is_string(&self) -> bool {
        matches!(
            self,
            ContentModel::Simple(SimpleType::String) | ContentModel::Mixed
        )
    }

    /// The simple type, if any.
    pub fn simple_type(&self) -> Option<&SimpleType> {
        match self {
            ContentModel::Simple(t) => Some(t),
            _ => None,
        }
    }
}

/// Upper occurrence bound of an element.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaxOccurs {
    /// `maxOccurs="n"`.
    Bounded(u32),
    /// `maxOccurs="unbounded"`.
    Unbounded,
}

impl MaxOccurs {
    /// Whether at most one occurrence is allowed (Condition 4's 1:1 test).
    pub fn is_single(self) -> bool {
        matches!(self, MaxOccurs::Bounded(n) if n <= 1)
    }
}

/// One element declaration in the schema tree.
#[derive(Debug, Clone, PartialEq)]
pub struct SchemaNode {
    pub(crate) name: String,
    pub(crate) parent: Option<SchemaNodeId>,
    pub(crate) children: Vec<SchemaNodeId>,
    pub(crate) min_occurs: u32,
    pub(crate) max_occurs: MaxOccurs,
    pub(crate) nillable: bool,
    pub(crate) content: ContentModel,
    /// Declared attributes (names only; DogmatiX descriptions use elements).
    pub(crate) attributes: Vec<String>,
}

impl SchemaNode {
    /// Element name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared `minOccurs`.
    pub fn min_occurs(&self) -> u32 {
        self.min_occurs
    }

    /// Declared `maxOccurs`.
    pub fn max_occurs(&self) -> MaxOccurs {
        self.max_occurs
    }

    /// Declared `nillable`.
    pub fn nillable(&self) -> bool {
        self.nillable
    }

    /// Content model.
    pub fn content(&self) -> &ContentModel {
        &self.content
    }

    /// Declared attribute names.
    pub fn attributes(&self) -> &[String] {
        &self.attributes
    }
}

/// A schema: a tree of element declarations rooted at the document element.
#[derive(Debug, Clone, PartialEq)]
pub struct Schema {
    pub(crate) nodes: Vec<SchemaNode>,
}

impl Schema {
    /// Creates a schema containing only a root element declaration.
    pub fn with_root(name: &str, content: ContentModel) -> Self {
        Schema {
            nodes: vec![SchemaNode {
                name: name.to_string(),
                parent: None,
                children: Vec::new(),
                min_occurs: 1,
                max_occurs: MaxOccurs::Bounded(1),
                nillable: false,
                content,
                attributes: Vec::new(),
            }],
        }
    }

    /// Parses an XSD document (see [`crate::schema::parser`]).
    pub fn parse_xsd(input: &str) -> Result<Self, crate::XmlError> {
        super::parser::parse_xsd(input)
    }

    /// Infers a schema from an instance document
    /// (see [`crate::schema::infer`]).
    pub fn infer(doc: &crate::Document) -> Result<Self, crate::XmlError> {
        super::infer::infer(doc)
    }

    /// The root element declaration.
    pub fn root(&self) -> SchemaNodeId {
        SchemaNodeId(0)
    }

    /// Number of element declarations.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the schema has no declarations (never true for parsed
    /// schemas — a root always exists).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Borrow a node.
    #[inline]
    pub fn node(&self, id: SchemaNodeId) -> &SchemaNode {
        &self.nodes[id.index()]
    }

    /// Adds a child element declaration; used by builders and inference.
    #[allow(clippy::too_many_arguments)]
    pub fn add_child(
        &mut self,
        parent: SchemaNodeId,
        name: &str,
        min_occurs: u32,
        max_occurs: MaxOccurs,
        nillable: bool,
        content: ContentModel,
    ) -> SchemaNodeId {
        let id = SchemaNodeId(self.nodes.len() as u32);
        self.nodes.push(SchemaNode {
            name: name.to_string(),
            parent: Some(parent),
            children: Vec::new(),
            min_occurs,
            max_occurs,
            nillable,
            content,
            attributes: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Children of a declaration.
    pub fn children(&self, id: SchemaNodeId) -> &[SchemaNodeId] {
        &self.node(id).children
    }

    /// Parent of a declaration.
    pub fn parent(&self, id: SchemaNodeId) -> Option<SchemaNodeId> {
        self.node(id).parent
    }

    /// Proper ancestors, nearest first.
    pub fn ancestors(&self, id: SchemaNodeId) -> impl Iterator<Item = SchemaNodeId> + '_ {
        let mut current = self.parent(id);
        std::iter::from_fn(move || {
            let next = current?;
            current = self.parent(next);
            Some(next)
        })
    }

    /// Depth: the root has depth 0.
    pub fn depth(&self, id: SchemaNodeId) -> usize {
        self.ancestors(id).count()
    }

    /// Slash-separated name path from the root, e.g. `/moviedoc/movie/title`.
    pub fn path(&self, id: SchemaNodeId) -> String {
        let mut parts = vec![self.node(id).name.as_str()];
        parts.extend(self.ancestors(id).map(|a| self.node(a).name.as_str()));
        parts.reverse();
        let mut out = String::new();
        for p in parts {
            out.push('/');
            out.push_str(p);
        }
        out
    }

    /// Finds a declaration by name path (`/moviedoc/movie`). Variable
    /// anchors like `$doc/moviedoc/movie` are accepted.
    pub fn find_by_path(&self, path: &str) -> Option<SchemaNodeId> {
        let path = path.trim();
        let path = match path.find("/") {
            Some(slash) if path.starts_with('$') => &path[slash..],
            _ => path,
        };
        let mut segments = path.split('/').filter(|s| !s.is_empty());
        let first = segments.next()?;
        if self.node(self.root()).name != first {
            return None;
        }
        let mut current = self.root();
        for seg in segments {
            current = self
                .children(current)
                .iter()
                .copied()
                .find(|c| self.node(*c).name == seg)?;
        }
        Some(current)
    }

    /// Descendant declarations whose depth relative to `id` is within
    /// `radius` (paper Heuristic 2, r-distant descendants).
    pub fn descendants_within(&self, id: SchemaNodeId, radius: usize) -> Vec<SchemaNodeId> {
        let mut out = Vec::new();
        if radius == 0 {
            return out;
        }
        let mut frontier: Vec<SchemaNodeId> = self.children(id).to_vec();
        let mut dist = 1;
        while !frontier.is_empty() && dist <= radius {
            out.extend(frontier.iter().copied());
            if dist == radius {
                break;
            }
            frontier = frontier
                .iter()
                .flat_map(|n| self.children(*n).iter().copied())
                .collect();
            dist += 1;
        }
        out
    }

    /// Descendant declarations in breadth-first order (paper Heuristic 3,
    /// k-closest; the caller takes the first `k`).
    pub fn breadth_first(&self, id: SchemaNodeId) -> Vec<SchemaNodeId> {
        let mut out = Vec::new();
        let mut queue: VecDeque<SchemaNodeId> = self.children(id).iter().copied().collect();
        while let Some(n) = queue.pop_front() {
            out.push(n);
            queue.extend(self.children(n).iter().copied());
        }
        out
    }

    /// All declarations in depth-first order.
    pub fn all_nodes(&self) -> impl Iterator<Item = SchemaNodeId> {
        (0..self.nodes.len() as u32).map(SchemaNodeId)
    }

    /// Paper Condition 3 ("mandatory elements"): `minOccurs >= 1` and not
    /// nillable.
    pub fn is_mandatory(&self, id: SchemaNodeId) -> bool {
        let n = self.node(id);
        n.min_occurs >= 1 && !n.nillable
    }

    /// Paper Condition 4 ("singleton elements"): `maxOccurs == 1`, a 1:1
    /// relationship with the parent.
    pub fn is_singleton(&self, id: SchemaNodeId) -> bool {
        self.node(id).max_occurs.is_single()
    }

    /// Paper Condition 1 ("content model"): the element can carry text.
    pub fn has_text(&self, id: SchemaNodeId) -> bool {
        self.node(id).content.has_text()
    }

    /// Paper Condition 2 ("string data type").
    pub fn is_string_type(&self, id: SchemaNodeId) -> bool {
        self.node(id).content.is_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cd_schema() -> Schema {
        // Mirrors Table 5 of the paper.
        let mut s = Schema::with_root("discs", ContentModel::Complex);
        let disc = s.add_child(
            s.root(),
            "disc",
            0,
            MaxOccurs::Unbounded,
            false,
            ContentModel::Complex,
        );
        s.add_child(
            disc,
            "did",
            1,
            MaxOccurs::Bounded(1),
            false,
            ContentModel::Simple(SimpleType::String),
        );
        s.add_child(
            disc,
            "artist",
            1,
            MaxOccurs::Unbounded,
            false,
            ContentModel::Simple(SimpleType::String),
        );
        s.add_child(
            disc,
            "title",
            1,
            MaxOccurs::Unbounded,
            false,
            ContentModel::Simple(SimpleType::String),
        );
        s.add_child(
            disc,
            "genre",
            0,
            MaxOccurs::Bounded(1),
            false,
            ContentModel::Simple(SimpleType::String),
        );
        s.add_child(
            disc,
            "year",
            1,
            MaxOccurs::Bounded(1),
            false,
            ContentModel::Simple(SimpleType::Date),
        );
        s.add_child(
            disc,
            "cdextra",
            0,
            MaxOccurs::Unbounded,
            false,
            ContentModel::Simple(SimpleType::String),
        );
        let tracks = s.add_child(
            disc,
            "tracks",
            1,
            MaxOccurs::Bounded(1),
            false,
            ContentModel::Complex,
        );
        s.add_child(
            tracks,
            "title",
            1,
            MaxOccurs::Unbounded,
            false,
            ContentModel::Simple(SimpleType::String),
        );
        s
    }

    #[test]
    fn paths_and_lookup() {
        let s = cd_schema();
        let disc = s.find_by_path("/discs/disc").unwrap();
        assert_eq!(s.path(disc), "/discs/disc");
        let track_title = s.find_by_path("/discs/disc/tracks/title").unwrap();
        assert_eq!(s.depth(track_title), 3);
        assert!(s.find_by_path("/discs/nosuch").is_none());
        assert!(s.find_by_path("$doc/discs/disc").is_some());
    }

    #[test]
    fn conditions_match_table5_flags() {
        let s = cd_schema();
        let did = s.find_by_path("/discs/disc/did").unwrap();
        assert!(s.is_mandatory(did) && s.is_singleton(did) && s.is_string_type(did));
        let artist = s.find_by_path("/discs/disc/artist").unwrap();
        assert!(s.is_mandatory(artist) && !s.is_singleton(artist));
        let genre = s.find_by_path("/discs/disc/genre").unwrap();
        assert!(!s.is_mandatory(genre) && s.is_singleton(genre));
        let year = s.find_by_path("/discs/disc/year").unwrap();
        assert!(!s.is_string_type(year) && s.has_text(year));
        let tracks = s.find_by_path("/discs/disc/tracks").unwrap();
        assert!(!s.has_text(tracks)); // complex content: no text node
    }

    #[test]
    fn descendants_within_radius() {
        let s = cd_schema();
        let disc = s.find_by_path("/discs/disc").unwrap();
        assert_eq!(s.descendants_within(disc, 1).len(), 7);
        assert_eq!(s.descendants_within(disc, 2).len(), 8);
        assert_eq!(s.descendants_within(disc, 0).len(), 0);
    }

    #[test]
    fn breadth_first_matches_table5_order() {
        let s = cd_schema();
        let disc = s.find_by_path("/discs/disc").unwrap();
        let names: Vec<_> = s
            .breadth_first(disc)
            .iter()
            .map(|n| s.node(*n).name().to_string())
            .collect();
        assert_eq!(
            names,
            vec!["did", "artist", "title", "genre", "year", "cdextra", "tracks", "title"]
        );
    }

    #[test]
    fn simple_type_mapping() {
        assert_eq!(SimpleType::from_xsd_name("xs:string"), SimpleType::String);
        assert_eq!(SimpleType::from_xsd_name("xsd:gYear"), SimpleType::GYear);
        assert_eq!(SimpleType::from_xsd_name("integer"), SimpleType::Integer);
        assert_eq!(
            SimpleType::from_xsd_name("xs:anyURI"),
            SimpleType::Other("anyURI".to_string())
        );
    }

    #[test]
    fn ancestors_root_depth() {
        let s = cd_schema();
        assert_eq!(s.depth(s.root()), 0);
        let tt = s.find_by_path("/discs/disc/tracks/title").unwrap();
        let anc: Vec<_> = s
            .ancestors(tt)
            .map(|a| s.node(a).name().to_string())
            .collect();
        assert_eq!(anc, vec!["tracks", "disc", "discs"]);
    }

    #[test]
    fn mixed_content_is_stringlike_text() {
        let cm = ContentModel::Mixed;
        assert!(cm.has_text() && cm.is_string());
        assert!(!ContentModel::Complex.has_text());
        assert!(!ContentModel::Empty.has_text());
    }
}
