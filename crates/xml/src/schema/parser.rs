//! Reader for the XSD subset.
//!
//! Supported constructs (sufficient for the data-centric schemas the paper
//! evaluates on, cf. Fig. 2 and Tables 5/6):
//!
//! * a single global `xs:element` as the document root,
//! * inline `xs:complexType` with `xs:sequence`, `xs:choice`, or `xs:all`
//!   compositors (arbitrarily nested),
//! * named top-level `xs:complexType`/`xs:simpleType` referenced via
//!   `type="..."`,
//! * `xs:simpleType` restrictions (`xs:restriction base="..."`),
//! * `minOccurs`, `maxOccurs` (number or `unbounded`), `nillable`,
//!   `mixed`,
//! * `xs:attribute` declarations (recorded by name),
//! * any namespace prefix for the schema namespace (matched by local name).
//!
//! Recursive type references are rejected with a clear error instead of
//! looping forever.

use super::model::{ContentModel, MaxOccurs, Schema, SchemaNodeId, SimpleType};
use crate::dom::{Document, NodeId};
use crate::error::XmlError;
use std::collections::HashMap;

/// Parses an XSD document into a [`Schema`] tree.
pub fn parse_xsd(input: &str) -> Result<Schema, XmlError> {
    let doc = Document::parse(input)?;
    let root = doc
        .root_element()
        .ok_or_else(|| XmlError::schema("empty schema document"))?;
    if local_name(doc.name(root).unwrap_or("")) != "schema" {
        return Err(XmlError::schema(format!(
            "expected a schema root element, found <{}>",
            doc.name(root).unwrap_or("?")
        )));
    }
    let ctx = Context::collect(&doc, root)?;
    let root_decls: Vec<NodeId> = doc
        .child_elements(root)
        .filter(|c| local_name(doc.name(*c).unwrap_or("")) == "element")
        .collect();
    let root_el = match root_decls.as_slice() {
        [one] => *one,
        [] => return Err(XmlError::schema("schema declares no global element")),
        _ => {
            return Err(XmlError::schema(
                "multiple global elements are not supported; declare one document root",
            ))
        }
    };
    let name = doc
        .attr(root_el, "name")
        .ok_or_else(|| XmlError::schema("global element without a name"))?
        .to_string();
    let mut schema = Schema::with_root(&name, ContentModel::Empty);
    let root_id = schema.root();
    let content = element_content(&doc, &ctx, root_el, &mut schema, root_id, &mut Vec::new())?;
    schema.nodes[0].content = content;
    Ok(schema)
}

/// Named top-level type definitions.
struct Context {
    complex_types: HashMap<String, NodeId>,
    simple_types: HashMap<String, SimpleType>,
}

impl Context {
    fn collect(doc: &Document, schema_root: NodeId) -> Result<Self, XmlError> {
        let mut complex_types = HashMap::new();
        let mut simple_types = HashMap::new();
        for child in doc.child_elements(schema_root) {
            match local_name(doc.name(child).unwrap_or("")) {
                "complexType" => {
                    let name = doc
                        .attr(child, "name")
                        .ok_or_else(|| XmlError::schema("top-level complexType without name"))?;
                    complex_types.insert(name.to_string(), child);
                }
                "simpleType" => {
                    let name = doc
                        .attr(child, "name")
                        .ok_or_else(|| XmlError::schema("top-level simpleType without name"))?;
                    simple_types.insert(name.to_string(), resolve_simple_type(doc, child)?);
                }
                _ => {}
            }
        }
        Ok(Context {
            complex_types,
            simple_types,
        })
    }
}

/// Resolves an `xs:simpleType` definition to its base built-in type.
fn resolve_simple_type(doc: &Document, simple_type: NodeId) -> Result<SimpleType, XmlError> {
    for child in doc.child_elements(simple_type) {
        if local_name(doc.name(child).unwrap_or("")) == "restriction" {
            let base = doc
                .attr(child, "base")
                .ok_or_else(|| XmlError::schema("restriction without base"))?;
            return Ok(SimpleType::from_xsd_name(base));
        }
    }
    // Unions/lists degrade to string: DogmatiX only needs string-or-not.
    Ok(SimpleType::String)
}

/// Determines the content of one `xs:element` declaration and recursively
/// adds its children to `schema` under `node`.
fn element_content(
    doc: &Document,
    ctx: &Context,
    element: NodeId,
    schema: &mut Schema,
    node: SchemaNodeId,
    type_stack: &mut Vec<String>,
) -> Result<ContentModel, XmlError> {
    // Case 1: `type="..."` attribute.
    if let Some(type_name) = doc.attr(element, "type") {
        let local = local_name(type_name).to_string();
        if is_xsd_builtin(type_name) {
            return Ok(ContentModel::Simple(SimpleType::from_xsd_name(type_name)));
        }
        if let Some(st) = ctx.simple_types.get(&local) {
            return Ok(ContentModel::Simple(st.clone()));
        }
        if let Some(ct) = ctx.complex_types.get(&local) {
            if type_stack.contains(&local) {
                return Err(XmlError::schema(format!(
                    "recursive complex type '{local}' is not supported"
                )));
            }
            type_stack.push(local);
            let result = complex_type_content(doc, ctx, *ct, schema, node, type_stack);
            type_stack.pop();
            return result;
        }
        return Err(XmlError::schema(format!("unknown type '{type_name}'")));
    }
    // Case 2: inline complexType / simpleType child.
    for child in doc.child_elements(element) {
        match local_name(doc.name(child).unwrap_or("")) {
            "complexType" => {
                return complex_type_content(doc, ctx, child, schema, node, type_stack)
            }
            "simpleType" => return Ok(ContentModel::Simple(resolve_simple_type(doc, child)?)),
            _ => {}
        }
    }
    // Case 3: no type information — default to string, the XSD anyType
    // text-ish reading that data-centric documents rely on.
    Ok(ContentModel::Simple(SimpleType::String))
}

/// Walks a complexType definition, appending child element declarations.
fn complex_type_content(
    doc: &Document,
    ctx: &Context,
    complex_type: NodeId,
    schema: &mut Schema,
    node: SchemaNodeId,
    type_stack: &mut Vec<String>,
) -> Result<ContentModel, XmlError> {
    let mixed = doc.attr(complex_type, "mixed") == Some("true");
    let mut has_children = false;
    for child in doc.child_elements(complex_type) {
        match local_name(doc.name(child).unwrap_or("")) {
            "sequence" | "all" => {
                has_children |= walk_compositor(doc, ctx, child, schema, node, false, type_stack)?;
            }
            "choice" => {
                has_children |= walk_compositor(doc, ctx, child, schema, node, true, type_stack)?;
            }
            "attribute" => {
                if let Some(name) = doc.attr(child, "name") {
                    schema.nodes[node.index()].attributes.push(name.to_string());
                }
            }
            "simpleContent" => {
                // <xs:simpleContent><xs:extension base="xs:string"> + attrs.
                for ext in doc.child_elements(child) {
                    if local_name(doc.name(ext).unwrap_or("")) == "extension" {
                        for attr in doc.child_elements(ext) {
                            if local_name(doc.name(attr).unwrap_or("")) == "attribute" {
                                if let Some(name) = doc.attr(attr, "name") {
                                    schema.nodes[node.index()].attributes.push(name.to_string());
                                }
                            }
                        }
                        let base = doc.attr(ext, "base").unwrap_or("xs:string");
                        return Ok(ContentModel::Simple(SimpleType::from_xsd_name(base)));
                    }
                }
            }
            _ => {}
        }
    }
    Ok(if mixed {
        ContentModel::Mixed
    } else if has_children {
        ContentModel::Complex
    } else {
        ContentModel::Empty
    })
}

/// Walks a compositor (`sequence`/`choice`/`all`), returning whether any
/// element declaration was found. Inside a `choice`, members are treated as
/// optional (their effective `minOccurs` is 0) — a choice guarantees no
/// individual member's presence.
fn walk_compositor(
    doc: &Document,
    ctx: &Context,
    compositor: NodeId,
    schema: &mut Schema,
    node: SchemaNodeId,
    inside_choice: bool,
    type_stack: &mut Vec<String>,
) -> Result<bool, XmlError> {
    let mut found = false;
    for child in doc.child_elements(compositor) {
        match local_name(doc.name(child).unwrap_or("")) {
            "element" => {
                found = true;
                let name = doc
                    .attr(child, "name")
                    .ok_or_else(|| XmlError::schema("element references (ref=) are not supported"))?
                    .to_string();
                let declared_min = parse_occurs(doc.attr(child, "minOccurs"), 1)?;
                let min_occurs = if inside_choice { 0 } else { declared_min };
                let max_occurs = match doc.attr(child, "maxOccurs") {
                    Some("unbounded") => MaxOccurs::Unbounded,
                    other => MaxOccurs::Bounded(parse_occurs(other, 1)?),
                };
                let nillable = doc.attr(child, "nillable") == Some("true");
                let child_node = schema.add_child(
                    node,
                    &name,
                    min_occurs,
                    max_occurs,
                    nillable,
                    ContentModel::Empty,
                );
                let content = element_content(doc, ctx, child, schema, child_node, type_stack)?;
                schema.nodes[child_node.index()].content = content;
            }
            "sequence" | "all" => {
                found |= walk_compositor(doc, ctx, child, schema, node, inside_choice, type_stack)?;
            }
            "choice" => {
                found |= walk_compositor(doc, ctx, child, schema, node, true, type_stack)?;
            }
            _ => {}
        }
    }
    Ok(found)
}

fn parse_occurs(value: Option<&str>, default: u32) -> Result<u32, XmlError> {
    match value {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| XmlError::schema(format!("invalid occurrence value '{v}'"))),
    }
}

fn is_xsd_builtin(type_name: &str) -> bool {
    // Heuristic: prefixed names whose local part is a known builtin.
    let local = local_name(type_name);
    matches!(
        local,
        "string"
            | "normalizedString"
            | "token"
            | "date"
            | "dateTime"
            | "gYear"
            | "integer"
            | "int"
            | "long"
            | "short"
            | "nonNegativeInteger"
            | "positiveInteger"
            | "decimal"
            | "float"
            | "double"
            | "boolean"
            | "anyURI"
    ) && type_name.contains(':')
}

fn local_name(name: &str) -> &str {
    name.rsplit(':').next().unwrap_or(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MOVIE_XSD: &str = r#"<?xml version="1.0"?>
<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
  <xs:element name="moviedoc">
    <xs:complexType>
      <xs:sequence>
        <xs:element name="movie" minOccurs="0" maxOccurs="unbounded">
          <xs:complexType>
            <xs:sequence>
              <xs:element name="title" type="xs:string"/>
              <xs:element name="year" type="xs:gYear"/>
              <xs:element name="actor" minOccurs="0" maxOccurs="unbounded">
                <xs:complexType>
                  <xs:sequence>
                    <xs:element name="name" type="xs:string"/>
                    <xs:element name="role" type="xs:string" minOccurs="0"/>
                  </xs:sequence>
                </xs:complexType>
              </xs:element>
            </xs:sequence>
            <xs:attribute name="id"/>
          </xs:complexType>
        </xs:element>
      </xs:sequence>
    </xs:complexType>
  </xs:element>
</xs:schema>"#;

    #[test]
    fn parses_movie_schema() {
        let s = Schema::parse_xsd(MOVIE_XSD).unwrap();
        assert_eq!(s.node(s.root()).name(), "moviedoc");
        let movie = s.find_by_path("/moviedoc/movie").unwrap();
        assert!(!s.is_singleton(movie));
        assert!(!s.is_mandatory(movie));
        assert_eq!(s.node(movie).attributes(), &["id".to_string()]);
        let title = s.find_by_path("/moviedoc/movie/title").unwrap();
        assert!(s.is_mandatory(title) && s.is_singleton(title) && s.is_string_type(title));
        let year = s.find_by_path("/moviedoc/movie/year").unwrap();
        assert!(!s.is_string_type(year));
        assert_eq!(
            s.node(year).content().simple_type(),
            Some(&SimpleType::GYear)
        );
        let role = s.find_by_path("/moviedoc/movie/actor/role").unwrap();
        assert!(!s.is_mandatory(role));
    }

    #[test]
    fn named_complex_types_resolve() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="lib" type="LibType"/>
          <xs:complexType name="LibType">
            <xs:sequence>
              <xs:element name="book" type="BookType" maxOccurs="unbounded"/>
            </xs:sequence>
          </xs:complexType>
          <xs:complexType name="BookType">
            <xs:sequence><xs:element name="isbn" type="xs:string"/></xs:sequence>
          </xs:complexType>
        </xs:schema>"#;
        let s = Schema::parse_xsd(xsd).unwrap();
        assert!(s.find_by_path("/lib/book/isbn").is_some());
    }

    #[test]
    fn recursive_type_rejected() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="n" type="NType"/>
          <xs:complexType name="NType">
            <xs:sequence><xs:element name="n" type="NType" minOccurs="0"/></xs:sequence>
          </xs:complexType>
        </xs:schema>"#;
        let e = Schema::parse_xsd(xsd).unwrap_err();
        assert!(e.to_string().contains("recursive"), "{e}");
    }

    #[test]
    fn named_simple_types_resolve() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r">
            <xs:complexType><xs:sequence>
              <xs:element name="v" type="YearType"/>
            </xs:sequence></xs:complexType>
          </xs:element>
          <xs:simpleType name="YearType">
            <xs:restriction base="xs:gYear"/>
          </xs:simpleType>
        </xs:schema>"#;
        let s = Schema::parse_xsd(xsd).unwrap();
        let v = s.find_by_path("/r/v").unwrap();
        assert_eq!(s.node(v).content().simple_type(), Some(&SimpleType::GYear));
    }

    #[test]
    fn choice_members_become_optional() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r">
            <xs:complexType><xs:choice>
              <xs:element name="a" type="xs:string"/>
              <xs:element name="b" type="xs:string"/>
            </xs:choice></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = Schema::parse_xsd(xsd).unwrap();
        let a = s.find_by_path("/r/a").unwrap();
        assert!(!s.is_mandatory(a), "choice members must not be mandatory");
    }

    #[test]
    fn mixed_content_model() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="para">
            <xs:complexType mixed="true"><xs:sequence>
              <xs:element name="em" type="xs:string" minOccurs="0"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = Schema::parse_xsd(xsd).unwrap();
        assert_eq!(*s.node(s.root()).content(), ContentModel::Mixed);
        assert!(s.has_text(s.root()));
    }

    #[test]
    fn nillable_breaks_mandatory() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r">
            <xs:complexType><xs:sequence>
              <xs:element name="v" type="xs:string" nillable="true"/>
            </xs:sequence></xs:complexType>
          </xs:element>
        </xs:schema>"#;
        let s = Schema::parse_xsd(xsd).unwrap();
        let v = s.find_by_path("/r/v").unwrap();
        assert!(!s.is_mandatory(v));
    }

    #[test]
    fn rejects_unsupported_shapes() {
        assert!(Schema::parse_xsd("<notaschema/>").is_err());
        assert!(
            Schema::parse_xsd(r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema"/>"#)
                .is_err()
        );
        // ref= not supported
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element ref="other"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        assert!(Schema::parse_xsd(xsd).is_err());
    }

    #[test]
    fn default_occurs_are_one_one() {
        let xsd = r#"<xs:schema xmlns:xs="http://www.w3.org/2001/XMLSchema">
          <xs:element name="r"><xs:complexType><xs:sequence>
            <xs:element name="v" type="xs:string"/>
          </xs:sequence></xs:complexType></xs:element>
        </xs:schema>"#;
        let s = Schema::parse_xsd(xsd).unwrap();
        let v = s.find_by_path("/r/v").unwrap();
        assert!(s.is_mandatory(v) && s.is_singleton(v));
    }
}
