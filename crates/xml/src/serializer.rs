//! Document serialisation (compact and pretty-printed).
//!
//! The writer escapes text and attribute values such that
//! `Document::parse(doc.to_xml())` reproduces the same tree (modulo
//! whitespace-only text nodes introduced by pretty printing).

use crate::dom::{Document, NodeId, NodeKind, DOCUMENT_NODE};
use crate::escape::{escape_attr, escape_text};

/// Serialises `doc` to a string. With `pretty`, elements are indented by
/// two spaces per level and text-only elements stay on one line.
pub fn to_string(doc: &Document, pretty: bool) -> String {
    let mut out = String::new();
    for child in doc.children(DOCUMENT_NODE) {
        write_node(doc, *child, &mut out, pretty, 0);
        if pretty {
            out.push('\n');
        }
    }
    if pretty && out.ends_with('\n') {
        out.pop();
    }
    out
}

/// Serialises the subtree rooted at `id` to a compact string — the
/// shape a probe client sends as an XML fragment.
pub fn node_to_string(doc: &Document, id: NodeId) -> String {
    let mut out = String::new();
    write_node(doc, id, &mut out, false, 0);
    out
}

fn write_node(doc: &Document, id: NodeId, out: &mut String, pretty: bool, depth: usize) {
    match &doc.node(id).kind() {
        NodeKind::Element {
            name,
            attributes,
            children,
        } => {
            out.push('<');
            out.push_str(name);
            for (k, v) in attributes {
                out.push(' ');
                out.push_str(k);
                out.push_str("=\"");
                out.push_str(&escape_attr(v));
                out.push('"');
            }
            if children.is_empty() {
                out.push_str("/>");
                return;
            }
            out.push('>');
            let text_only = children
                .iter()
                .all(|c| matches!(doc.node(*c).kind(), NodeKind::Text(_)));
            if pretty && !text_only {
                for child in children {
                    if is_ignorable_ws(doc, *child) {
                        continue;
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_node(doc, *child, out, pretty, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
            } else {
                for child in children {
                    write_node(doc, *child, out, pretty, depth + 1);
                }
            }
            out.push_str("</");
            out.push_str(name);
            out.push('>');
        }
        NodeKind::Text(t) => out.push_str(&escape_text(t)),
        NodeKind::Comment(t) => {
            out.push_str("<!--");
            out.push_str(t);
            out.push_str("-->");
        }
        NodeKind::ProcessingInstruction { target, data } => {
            out.push_str("<?");
            out.push_str(target);
            if !data.is_empty() {
                out.push(' ');
                out.push_str(data);
            }
            out.push_str("?>");
        }
        NodeKind::Document { .. } => unreachable!("document node is never written"),
    }
}

fn is_ignorable_ws(doc: &Document, id: NodeId) -> bool {
    matches!(doc.node(id).kind(), NodeKind::Text(t) if t.trim().is_empty())
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

#[cfg(test)]
mod tests {
    use crate::dom::Document;

    #[test]
    fn compact_roundtrip() {
        let src = "<a x=\"1\"><b>text &amp; more</b><c/></a>";
        let doc = Document::parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn parse_serialize_parse_is_identity() {
        let src = "<m a=\"q&quot;q\"><t>x&lt;y</t><e/><t2>ü</t2></m>";
        let doc1 = Document::parse(src).unwrap();
        let doc2 = Document::parse(&doc1.to_xml()).unwrap();
        assert_eq!(doc1, doc2);
    }

    #[test]
    fn pretty_print_indents() {
        let doc = Document::parse("<a><b><c>x</c></b></a>").unwrap();
        let pretty = doc.to_xml_pretty();
        assert_eq!(pretty, "<a>\n  <b>\n    <c>x</c>\n  </b>\n</a>");
    }

    #[test]
    fn pretty_roundtrip_equivalent_modulo_whitespace() {
        let src = "<a><b>keep me</b><c><d>1</d><d>2</d></c></a>";
        let doc1 = Document::parse(src).unwrap();
        let doc2 = Document::parse(&doc1.to_xml_pretty()).unwrap();
        // Same element structure and text values.
        assert_eq!(
            doc1.select("//d").unwrap().len(),
            doc2.select("//d").unwrap().len()
        );
        let b1 = doc1.select("/a/b").unwrap()[0];
        let b2 = doc2.select("/a/b").unwrap()[0];
        assert_eq!(doc1.text_content(b1), doc2.text_content(b2));
    }

    #[test]
    fn comments_and_pis_serialised() {
        let src = "<r><!--note--><?pi data?></r>";
        let doc = Document::parse(src).unwrap();
        assert_eq!(doc.to_xml(), src);
    }

    #[test]
    fn empty_element_shorthand() {
        let doc = Document::parse("<a><b></b></a>").unwrap();
        assert_eq!(doc.to_xml(), "<a><b/></a>");
    }
}
