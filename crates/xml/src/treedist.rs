//! Tree edit distance (Zhang–Shasha) between document subtrees.
//!
//! The paper's outlook (Section 5) proposes adapting tree edit distance
//! as an alternative XML similarity measure, citing Guha et al.'s
//! approximate XML joins \[6\]. This module implements the classic
//! Zhang–Shasha algorithm over the arena DOM so the ablation experiments
//! can compare a structural measure against DogmatiX's OD-based one.
//!
//! Nodes are labelled with the element name, or the normalised text for
//! text nodes (whitespace-only text is skipped, matching the rest of the
//! system). Unit costs by default; [`tree_edit_distance_with`] accepts a
//! custom relabel cost, e.g. a fractional string distance for text nodes.

use crate::dom::{Document, NodeId, NodeKind};

/// A subtree flattened to postorder for Zhang–Shasha.
struct PostOrder {
    /// Node labels in postorder (1-based; index 0 unused).
    labels: Vec<String>,
    /// `lml[i]`: postorder index of the leftmost leaf of the subtree
    /// rooted at `i`.
    lml: Vec<usize>,
    /// Keyroots in increasing order.
    keyroots: Vec<usize>,
}

fn label_of(doc: &Document, id: NodeId) -> Option<String> {
    match doc.node(id).kind() {
        NodeKind::Element { name, .. } => Some(name.clone()),
        NodeKind::Text(t) => {
            let trimmed = t.trim();
            if trimmed.is_empty() {
                None
            } else {
                Some(dogmatix_textsim_normalize(trimmed))
            }
        }
        _ => None,
    }
}

/// Light local normalisation (lowercase + whitespace collapse) without
/// depending on the textsim crate (the xml crate stays dependency-free).
fn dogmatix_textsim_normalize(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut first = true;
    for token in s.split_whitespace() {
        if !first {
            out.push(' ');
        }
        out.push_str(&token.to_lowercase());
        first = false;
    }
    out
}

/// Collects the subtree in postorder, computing leftmost leaves.
fn postorder(doc: &Document, root: NodeId) -> PostOrder {
    let mut labels = vec![String::new()]; // 1-based
    let mut lml = vec![0usize];

    // Returns the postorder index of `id`'s subtree root, or None if the
    // node is skipped (comments, PIs, whitespace text).
    fn visit(
        doc: &Document,
        id: NodeId,
        labels: &mut Vec<String>,
        lml: &mut Vec<usize>,
    ) -> Option<usize> {
        let label = label_of(doc, id)?;
        let mut first_leaf: Option<usize> = None;
        for child in doc.children(id) {
            if let Some(child_idx) = visit(doc, *child, labels, lml) {
                if first_leaf.is_none() {
                    first_leaf = Some(lml[child_idx]);
                }
            }
        }
        labels.push(label);
        let idx = labels.len() - 1;
        lml.push(first_leaf.unwrap_or(idx));
        Some(idx)
    }
    visit(doc, root, &mut labels, &mut lml);

    // Keyroots: nodes with no ancestor sharing their leftmost leaf —
    // equivalently, the largest postorder index per distinct lml value.
    let mut last_for_lml: std::collections::HashMap<usize, usize> = Default::default();
    for (i, l) in lml.iter().enumerate().skip(1) {
        last_for_lml.insert(*l, i);
    }
    let mut keyroots: Vec<usize> = last_for_lml.into_values().collect();
    keyroots.sort_unstable();

    PostOrder {
        labels,
        lml,
        keyroots,
    }
}

/// Tree edit distance with unit insert/delete costs and the given
/// relabel cost (must be 0 for identical labels to keep the metric
/// axioms).
pub fn tree_edit_distance_with<F>(
    doc_a: &Document,
    root_a: NodeId,
    doc_b: &Document,
    root_b: NodeId,
    relabel: F,
) -> f64
where
    F: Fn(&str, &str) -> f64,
{
    let a = postorder(doc_a, root_a);
    let b = postorder(doc_b, root_b);
    let (na, nb) = (a.labels.len() - 1, b.labels.len() - 1);
    if na == 0 || nb == 0 {
        return (na + nb) as f64;
    }

    let mut td = vec![vec![0.0f64; nb + 1]; na + 1];

    for &i in &a.keyroots {
        for &j in &b.keyroots {
            // Forest distance for subtrees rooted at keyroots i, j.
            let (li, lj) = (a.lml[i], b.lml[j]);
            let (m, n) = (i - li + 1, j - lj + 1);
            let mut fd = vec![vec![0.0f64; n + 1]; m + 1];
            for x in 1..=m {
                fd[x][0] = fd[x - 1][0] + 1.0; // delete
            }
            for y in 1..=n {
                fd[0][y] = fd[0][y - 1] + 1.0; // insert
            }
            for x in 1..=m {
                for y in 1..=n {
                    let (ai, bj) = (li + x - 1, lj + y - 1);
                    if a.lml[ai] == li && b.lml[bj] == lj {
                        // Both prefixes are whole trees.
                        let rel = relabel(&a.labels[ai], &b.labels[bj]);
                        fd[x][y] = (fd[x - 1][y] + 1.0)
                            .min(fd[x][y - 1] + 1.0)
                            .min(fd[x - 1][y - 1] + rel);
                        td[ai][bj] = fd[x][y];
                    } else {
                        let (px, py) = (a.lml[ai] - li, b.lml[bj] - lj);
                        fd[x][y] = (fd[x - 1][y] + 1.0)
                            .min(fd[x][y - 1] + 1.0)
                            .min(fd[px][py] + td[ai][bj]);
                    }
                }
            }
        }
    }
    td[na][nb]
}

/// Tree edit distance with unit costs (relabel = 1 for differing labels).
pub fn tree_edit_distance(
    doc_a: &Document,
    root_a: NodeId,
    doc_b: &Document,
    root_b: NodeId,
) -> f64 {
    tree_edit_distance_with(
        doc_a,
        root_a,
        doc_b,
        root_b,
        |x, y| {
            if x == y {
                0.0
            } else {
                1.0
            }
        },
    )
}

/// Number of labelled nodes in a subtree (elements + non-whitespace text).
pub fn labelled_size(doc: &Document, root: NodeId) -> usize {
    let po = postorder(doc, root);
    po.labels.len() - 1
}

/// Normalised tree similarity in `[0, 1]`:
/// `1 − ted / (size_a + size_b)`. Two empty trees are identical (1.0).
pub fn tree_similarity(doc_a: &Document, root_a: NodeId, doc_b: &Document, root_b: NodeId) -> f64 {
    let sa = labelled_size(doc_a, root_a);
    let sb = labelled_size(doc_b, root_b);
    if sa + sb == 0 {
        return 1.0;
    }
    let ted = tree_edit_distance(doc_a, root_a, doc_b, root_b);
    1.0 - ted / (sa + sb) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    fn root(doc: &Document) -> NodeId {
        doc.root_element().unwrap()
    }

    #[test]
    fn identical_trees_have_zero_distance() {
        let a = Document::parse("<m><t>X</t><y>1999</y></m>").unwrap();
        let b = Document::parse("<m><t>X</t><y>1999</y></m>").unwrap();
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 0.0);
        assert_eq!(tree_similarity(&a, root(&a), &b, root(&b)), 1.0);
    }

    #[test]
    fn single_relabel_costs_one() {
        let a = Document::parse("<m><t>X</t></m>").unwrap();
        let b = Document::parse("<m><t>Y</t></m>").unwrap();
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 1.0);
    }

    #[test]
    fn insertion_costs_one() {
        let a = Document::parse("<m><t>X</t></m>").unwrap();
        let b = Document::parse("<m><t>X</t><y>1999</y></m>").unwrap();
        // The <y> element and its text node are both inserted.
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 2.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Document::parse("<m><a>1</a><b><c>2</c></b></m>").unwrap();
        let b = Document::parse("<m><b><c>3</c></b><d>4</d></m>").unwrap();
        let ab = tree_edit_distance(&a, root(&a), &b, root(&b));
        let ba = tree_edit_distance(&b, root(&b), &a, root(&a));
        assert_eq!(ab, ba);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let docs: Vec<Document> = [
            "<m><t>X</t></m>",
            "<m><t>X</t><y>1</y></m>",
            "<m><y>1</y></m>",
            "<m><z><t>X</t></z></m>",
        ]
        .iter()
        .map(|s| Document::parse(s).unwrap())
        .collect();
        for a in &docs {
            for b in &docs {
                for c in &docs {
                    let ac = tree_edit_distance(a, root(a), c, root(c));
                    let ab = tree_edit_distance(a, root(a), b, root(b));
                    let bc = tree_edit_distance(b, root(b), c, root(c));
                    assert!(ac <= ab + bc + 1e-9);
                }
            }
        }
    }

    #[test]
    fn structural_difference_detected() {
        // Same data values, different nesting: TED sees the difference.
        let flat = Document::parse("<m><title>X</title></m>").unwrap();
        let nested = Document::parse("<m><movie-title><title>X</title></movie-title></m>").unwrap();
        let d = tree_edit_distance(&flat, root(&flat), &nested, root(&nested));
        assert_eq!(d, 1.0, "one inserted wrapper node");
    }

    #[test]
    fn text_normalisation_applies() {
        let a = Document::parse("<m><t>The  MATRIX</t></m>").unwrap();
        let b = Document::parse("<m><t>the matrix</t></m>").unwrap();
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 0.0);
    }

    #[test]
    fn custom_relabel_cost() {
        let a = Document::parse("<m><t>abcd</t></m>").unwrap();
        let b = Document::parse("<m><t>abce</t></m>").unwrap();
        // Fractional relabel: charge 0.25 for near-identical text.
        let d =
            tree_edit_distance_with(
                &a,
                root(&a),
                &b,
                root(&b),
                |x, y| {
                    if x == y {
                        0.0
                    } else {
                        0.25
                    }
                },
            );
        assert_eq!(d, 0.25);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let a = Document::parse("<m><!-- note --><t>X</t>\n  </m>").unwrap();
        let b = Document::parse("<m><t>X</t></m>").unwrap();
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 0.0);
        assert_eq!(labelled_size(&a, root(&a)), 3);
    }

    #[test]
    fn empty_vs_populated() {
        let a = Document::parse("<m/>").unwrap();
        let b = Document::parse("<m><t>X</t><y>1</y></m>").unwrap();
        // <m> matches, two elements + two text nodes inserted.
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 4.0);
        let sim = tree_similarity(&a, root(&a), &b, root(&b));
        assert!(sim > 0.0 && sim < 1.0);
    }

    #[test]
    fn known_zhang_shasha_example() {
        // The classic f(d(a c(b)) e) vs f(c(d(a b)) e) example: distance 2.
        let a = Document::parse("<f><d><a/><c><b/></c></d><e/></f>").unwrap();
        let b = Document::parse("<f><c><d><a/><b/></d></c><e/></f>").unwrap();
        assert_eq!(tree_edit_distance(&a, root(&a), &b, root(&b)), 2.0);
    }
}
