//! XPath subset: the selection/projection queries DogmatiX generates.
//!
//! The paper formulates candidate and description queries as XQueries whose
//! bodies are pure selections and projections down the schema tree
//! (Section 3.3). This module implements exactly that fragment:
//!
//! * absolute paths `/moviedoc/movie`, optionally anchored at a variable
//!   like the paper's `$doc/moviedoc/movie` (the variable is treated as the
//!   document root),
//! * relative paths `./title`, `../year`, `.`,
//! * the descendant axis `//actor`,
//! * wildcard steps `*`,
//! * positional predicates `[2]`, child-value predicates `[title='x']`,
//!   and attribute predicates `[@id='42']`,
//! * terminal `@attr` and `text()` steps (via [`Path::select_values`]).
//!
//! Results are returned in document order without duplicates.

use crate::dom::{Document, NodeId, NodeKind};
use crate::error::XmlError;
use std::collections::HashSet;

/// A parsed XPath expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Path {
    absolute: bool,
    steps: Vec<Step>,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct Step {
    axis: Axis,
    test: NameTest,
    predicates: Vec<Predicate>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)]
enum Axis {
    Child,
    Descendant,
    Parent,
    SelfAxis,
    Attribute,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum NameTest {
    Name(String),
    Wildcard,
    Text,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Predicate {
    /// `[3]` — 1-based position within the matched candidates of one
    /// context node.
    Position(usize),
    /// `[child='value']`.
    ChildEquals(String, String),
    /// `[@attr='value']`.
    AttrEquals(String, String),
}

impl Path {
    /// Parses an XPath expression.
    ///
    /// ```
    /// use dogmatix_xml::Path;
    /// assert!(Path::parse("/moviedoc/movie/title").is_ok());
    /// assert!(Path::parse("$doc/moviedoc/movie").is_ok());
    /// assert!(Path::parse("./actor/name").is_ok());
    /// assert!(Path::parse("//disc[@id='3']/title").is_ok());
    /// assert!(Path::parse("").is_err());
    /// ```
    pub fn parse(input: &str) -> Result<Self, XmlError> {
        let mut rest = input.trim();
        if rest.is_empty() {
            return Err(XmlError::xpath("empty XPath expression"));
        }
        let mut absolute = false;
        // The paper anchors absolute paths at a variable: `$doc/...`.
        if let Some(after) = rest.strip_prefix('$') {
            let end = after
                .find('/')
                .ok_or_else(|| XmlError::xpath("variable anchor without path"))?;
            rest = &after[end..];
            absolute = true;
        }
        let mut steps = Vec::new();
        if let Some(r) = rest.strip_prefix('/') {
            absolute = true;
            rest = r;
        }
        // A leading "//" (now a single leading '/' left in rest).
        let mut next_axis = if let Some(r) = rest.strip_prefix('/') {
            rest = r;
            Axis::Descendant
        } else {
            Axis::Child
        };
        if rest.is_empty() {
            return Err(XmlError::xpath("path has no steps"));
        }
        for raw_step in split_steps(rest)? {
            match raw_step {
                RawStep::Separator => {
                    next_axis = Axis::Descendant;
                }
                RawStep::Token(tok) => {
                    steps.push(parse_step(&tok, next_axis)?);
                    next_axis = Axis::Child;
                }
            }
        }
        if steps.is_empty() {
            return Err(XmlError::xpath("path has no steps"));
        }
        // Attribute/text steps must be terminal.
        for (i, s) in steps.iter().enumerate() {
            let terminal = i + 1 == steps.len();
            if !terminal && (s.axis == Axis::Attribute || s.test == NameTest::Text) {
                return Err(XmlError::xpath(
                    "@attr and text() steps are only allowed at the end of a path",
                ));
            }
        }
        Ok(Path { absolute, steps })
    }

    /// Whether the path is absolute (starts at the document root).
    pub fn is_absolute(&self) -> bool {
        self.absolute
    }

    /// Whether the final step selects an attribute or `text()` (i.e. the
    /// path yields values rather than element nodes).
    pub fn yields_values(&self) -> bool {
        self.steps
            .last()
            .map(|s| s.axis == Axis::Attribute || s.test == NameTest::Text)
            .unwrap_or(false)
    }

    /// Selects matching element nodes. Attribute and `text()` finals yield
    /// their *owner* elements here; use [`Path::select_values`] for values.
    pub fn select(&self, doc: &Document, context: NodeId) -> Vec<NodeId> {
        let start = if self.absolute {
            crate::dom::DOCUMENT_NODE
        } else {
            context
        };
        let mut current = vec![start];
        for step in &self.steps {
            if step.axis == Axis::Attribute || step.test == NameTest::Text {
                break; // owner elements are the result
            }
            current = apply_step(doc, &current, step);
            if current.is_empty() {
                break;
            }
        }
        dedup_in_doc_order(current)
    }

    /// Selects string values: for `…/@attr` the attribute values, for
    /// `…/text()` the direct text, otherwise each matched element's direct
    /// text content (elements without text are skipped).
    pub fn select_values(&self, doc: &Document, context: NodeId) -> Vec<String> {
        let owners = self.select(doc, context);
        let mut out = Vec::new();
        match self.steps.last() {
            Some(step) if step.axis == Axis::Attribute => {
                if let NameTest::Name(attr) = &step.test {
                    for o in owners {
                        if let Some(v) = doc.attr(o, attr) {
                            out.push(v.to_string());
                        }
                    }
                }
            }
            Some(step) if step.test == NameTest::Text => {
                for o in owners {
                    if let Some(t) = doc.direct_text(o) {
                        out.push(t);
                    }
                }
            }
            _ => {
                for o in owners {
                    if let Some(t) = doc.direct_text(o) {
                        out.push(t);
                    }
                }
            }
        }
        out
    }
}

enum RawStep {
    Token(String),
    Separator,
}

/// Splits `a/b//c[x='1/2']` into tokens, treating `//` as a separator
/// marker and ignoring `/` inside predicate brackets.
fn split_steps(input: &str) -> Result<Vec<RawStep>, XmlError> {
    let mut out = Vec::new();
    let mut token = String::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut chars = input.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '\'' if depth > 0 => {
                in_quote = !in_quote;
                token.push(c);
            }
            '[' if !in_quote => {
                depth += 1;
                token.push(c);
            }
            ']' if !in_quote => {
                depth = depth
                    .checked_sub(1)
                    .ok_or_else(|| XmlError::xpath("unbalanced ']'"))?;
                token.push(c);
            }
            '/' if depth == 0 && !in_quote => {
                if token.is_empty() {
                    return Err(XmlError::xpath("empty path step"));
                }
                out.push(RawStep::Token(std::mem::take(&mut token)));
                if chars.peek() == Some(&'/') {
                    chars.next();
                    out.push(RawStep::Separator);
                }
            }
            _ => token.push(c),
        }
    }
    if depth != 0 || in_quote {
        return Err(XmlError::xpath("unbalanced predicate brackets"));
    }
    if token.is_empty() {
        return Err(XmlError::xpath("path ends with '/'"));
    }
    out.push(RawStep::Token(token));
    Ok(out)
}

fn parse_step(token: &str, axis: Axis) -> Result<Step, XmlError> {
    let (name_part, predicates) = split_predicates(token)?;
    let (axis, test) = match name_part.as_str() {
        "." => (Axis::SelfAxis, NameTest::Wildcard),
        ".." => (Axis::Parent, NameTest::Wildcard),
        "*" => (axis, NameTest::Wildcard),
        "text()" => (axis, NameTest::Text),
        other => {
            if let Some(attr) = other.strip_prefix('@') {
                if attr.is_empty() {
                    return Err(XmlError::xpath("'@' without attribute name"));
                }
                (Axis::Attribute, NameTest::Name(attr.to_string()))
            } else {
                validate_name(other)?;
                (axis, NameTest::Name(other.to_string()))
            }
        }
    };
    if (matches!(axis, Axis::SelfAxis | Axis::Parent | Axis::Attribute)) && !predicates.is_empty() {
        return Err(XmlError::xpath(
            "predicates are not supported on '.', '..', or attribute steps",
        ));
    }
    Ok(Step {
        axis,
        test,
        predicates,
    })
}

fn validate_name(name: &str) -> Result<(), XmlError> {
    let mut chars = name.chars();
    match chars.next() {
        Some(c) if c.is_alphabetic() || c == '_' => {}
        _ => return Err(XmlError::xpath(format!("invalid step name '{name}'"))),
    }
    if chars.any(|c| !(c.is_alphanumeric() || matches!(c, '_' | '-' | '.' | ':'))) {
        return Err(XmlError::xpath(format!("invalid step name '{name}'")));
    }
    Ok(())
}

fn split_predicates(token: &str) -> Result<(String, Vec<Predicate>), XmlError> {
    let Some(bracket) = token.find('[') else {
        return Ok((token.to_string(), Vec::new()));
    };
    let name = token[..bracket].to_string();
    let mut predicates = Vec::new();
    let mut rest = &token[bracket..];
    while !rest.is_empty() {
        if !rest.starts_with('[') {
            return Err(XmlError::xpath(format!(
                "malformed predicates in '{token}'"
            )));
        }
        let close = rest
            .find(']')
            .ok_or_else(|| XmlError::xpath("unterminated predicate"))?;
        let body = &rest[1..close];
        predicates.push(parse_predicate(body)?);
        rest = &rest[close + 1..];
    }
    Ok((name, predicates))
}

fn parse_predicate(body: &str) -> Result<Predicate, XmlError> {
    let body = body.trim();
    if let Ok(n) = body.parse::<usize>() {
        if n == 0 {
            return Err(XmlError::xpath("positions are 1-based"));
        }
        return Ok(Predicate::Position(n));
    }
    let eq = body
        .find('=')
        .ok_or_else(|| XmlError::xpath(format!("unsupported predicate '[{body}]'")))?;
    let lhs = body[..eq].trim();
    let rhs = body[eq + 1..].trim();
    let value = rhs
        .strip_prefix('\'')
        .and_then(|r| r.strip_suffix('\''))
        .or_else(|| rhs.strip_prefix('"').and_then(|r| r.strip_suffix('"')))
        .ok_or_else(|| XmlError::xpath(format!("predicate value must be quoted: '[{body}]'")))?;
    if let Some(attr) = lhs.strip_prefix('@') {
        Ok(Predicate::AttrEquals(attr.to_string(), value.to_string()))
    } else {
        validate_name(lhs)?;
        Ok(Predicate::ChildEquals(lhs.to_string(), value.to_string()))
    }
}

fn apply_step(doc: &Document, current: &[NodeId], step: &Step) -> Vec<NodeId> {
    let mut out = Vec::new();
    for &ctx in current {
        let candidates: Vec<NodeId> = match step.axis {
            Axis::Child => doc
                .child_elements(ctx)
                .filter(|n| name_matches(doc, *n, &step.test))
                .collect(),
            Axis::Descendant => doc
                .descendant_elements(ctx)
                .into_iter()
                .filter(|n| name_matches(doc, *n, &step.test))
                .collect(),
            Axis::Parent => doc
                .parent(ctx)
                .into_iter()
                .filter(|p| *p != crate::dom::DOCUMENT_NODE)
                .collect(),
            Axis::SelfAxis => vec![ctx],
            Axis::Attribute => vec![ctx],
        };
        let mut kept = Vec::new();
        'candidate: for (i, n) in candidates.iter().enumerate() {
            for p in &step.predicates {
                match p {
                    Predicate::Position(want) => {
                        if i + 1 != *want {
                            continue 'candidate;
                        }
                    }
                    Predicate::ChildEquals(name, value) => {
                        let matched = doc.child_elements(*n).any(|c| {
                            doc.name(c) == Some(name.as_str())
                                && doc.direct_text(c).as_deref() == Some(value.as_str())
                        });
                        if !matched {
                            continue 'candidate;
                        }
                    }
                    Predicate::AttrEquals(name, value) => {
                        if doc.attr(*n, name) != Some(value.as_str()) {
                            continue 'candidate;
                        }
                    }
                }
            }
            kept.push(*n);
        }
        out.extend(kept);
    }
    out
}

fn name_matches(doc: &Document, id: NodeId, test: &NameTest) -> bool {
    match test {
        NameTest::Name(n) => doc.name(id) == Some(n.as_str()),
        NameTest::Wildcard => doc.is_element(id),
        NameTest::Text => matches!(doc.node(id).kind(), NodeKind::Text(_)),
    }
}

fn dedup_in_doc_order(mut nodes: Vec<NodeId>) -> Vec<NodeId> {
    // NodeIds are assigned in document order by both the parser and the
    // builder, so sorting by id restores document order.
    nodes.sort_unstable();
    let mut seen = HashSet::with_capacity(nodes.len());
    nodes.retain(|n| seen.insert(*n));
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dom::Document;

    fn doc() -> Document {
        Document::parse(
            "<moviedoc>\
               <movie id=\"1\"><title>The Matrix</title><year>1999</year>\
                 <actor><name>Keanu Reeves</name></actor>\
                 <actor><name>L. Fishburne</name></actor></movie>\
               <movie id=\"2\"><title>Matrix</title><year>1999</year>\
                 <actor><name>Keanu Reeves</name></actor></movie>\
               <movie id=\"3\"><title>Signs</title><year>2002</year></movie>\
             </moviedoc>",
        )
        .unwrap()
    }

    #[test]
    fn absolute_path() {
        let d = doc();
        assert_eq!(d.select("/moviedoc/movie").unwrap().len(), 3);
        assert_eq!(d.select("/moviedoc/movie/title").unwrap().len(), 3);
        assert_eq!(d.select("/nosuch/movie").unwrap().len(), 0);
    }

    #[test]
    fn variable_anchor_like_paper() {
        let d = doc();
        assert_eq!(d.select("$doc/moviedoc/movie").unwrap().len(), 3);
    }

    #[test]
    fn relative_paths() {
        let d = doc();
        let movie = d.select("/moviedoc/movie").unwrap()[0];
        assert_eq!(d.select_from(movie, "./title").unwrap().len(), 1);
        assert_eq!(d.select_from(movie, "./actor/name").unwrap().len(), 2);
        assert_eq!(d.select_from(movie, "..").unwrap().len(), 1);
        assert_eq!(d.select_from(movie, ".").unwrap(), vec![movie]);
    }

    #[test]
    fn descendant_axis() {
        let d = doc();
        assert_eq!(d.select("//name").unwrap().len(), 3);
        assert_eq!(d.select("/moviedoc//name").unwrap().len(), 3);
        let movie = d.select("/moviedoc/movie").unwrap()[0];
        assert_eq!(d.select_from(movie, ".//name").unwrap().len(), 2);
    }

    #[test]
    fn wildcard() {
        let d = doc();
        assert_eq!(d.select("/moviedoc/*").unwrap().len(), 3);
        assert_eq!(d.select("/moviedoc/movie/*").unwrap().len(), 9);
    }

    #[test]
    fn positional_predicate() {
        let d = doc();
        let second = d.select("/moviedoc/movie[2]").unwrap();
        assert_eq!(second.len(), 1);
        assert_eq!(d.attr(second[0], "id"), Some("2"));
    }

    #[test]
    fn child_value_predicate() {
        let d = doc();
        let signs = d.select("/moviedoc/movie[title='Signs']").unwrap();
        assert_eq!(signs.len(), 1);
        assert_eq!(d.attr(signs[0], "id"), Some("3"));
        // Two movies share year 1999.
        assert_eq!(d.select("/moviedoc/movie[year='1999']").unwrap().len(), 2);
    }

    #[test]
    fn attr_predicate() {
        let d = doc();
        let m = d.select("/moviedoc/movie[@id='2']/title").unwrap();
        assert_eq!(m.len(), 1);
        assert_eq!(d.direct_text(m[0]).as_deref(), Some("Matrix"));
    }

    #[test]
    fn chained_predicates() {
        let d = doc();
        let m = d.select("/moviedoc/movie[year='1999'][2]").unwrap();
        // Predicates filter in sequence over the candidate list — the
        // second candidate that also has year 1999... order: position
        // applies to candidate index in this simplified dialect.
        assert!(m.len() <= 1);
    }

    #[test]
    fn attribute_values() {
        let d = doc();
        let p = Path::parse("/moviedoc/movie/@id").unwrap();
        assert!(p.yields_values());
        assert_eq!(
            p.select_values(&d, crate::dom::DOCUMENT_NODE),
            vec!["1", "2", "3"]
        );
    }

    #[test]
    fn text_values() {
        let d = doc();
        let p = Path::parse("/moviedoc/movie/title/text()").unwrap();
        assert_eq!(
            p.select_values(&d, crate::dom::DOCUMENT_NODE),
            vec!["The Matrix", "Matrix", "Signs"]
        );
    }

    #[test]
    fn element_values_default_to_direct_text() {
        let d = doc();
        let p = Path::parse("/moviedoc/movie/year").unwrap();
        assert_eq!(
            p.select_values(&d, crate::dom::DOCUMENT_NODE),
            vec!["1999", "1999", "2002"]
        );
    }

    #[test]
    fn document_order_no_duplicates() {
        let d = Document::parse("<r><a><b/></a><a><b/><b/></a></r>").unwrap();
        let all = d.select("//b").unwrap();
        assert_eq!(all.len(), 3);
        let mut sorted = all.clone();
        sorted.sort();
        assert_eq!(all, sorted);
    }

    #[test]
    fn parse_errors() {
        for bad in [
            "",
            "/",
            "a//",
            "/a/",
            "/a/[email protected]",
            "/a/b[",
            "/a/b[0]",
            "/a/b[x=unquoted]",
            "/a/@",
            "/a/@x/y",
            "/a/text()/y",
            "/a/1name",
        ] {
            assert!(Path::parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn is_absolute_flag() {
        assert!(Path::parse("/a/b").unwrap().is_absolute());
        assert!(Path::parse("$doc/a").unwrap().is_absolute());
        assert!(!Path::parse("./a").unwrap().is_absolute());
        assert!(!Path::parse("a/b").unwrap().is_absolute());
    }
}
