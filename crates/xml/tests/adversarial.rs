//! Adversarial inputs: the parser and XPath engine must reject garbage
//! with errors — never panic, loop, or mis-parse.

use dogmatix_xml::{Document, Path, Schema};

#[test]
fn parser_survives_malformed_inputs() {
    let cases = [
        "",
        " ",
        "<",
        ">",
        "<>",
        "</>",
        "<a",
        "<a/",
        "<a><//a>",
        "<a></b>",
        "<a b=c/>",
        "<a b='1' b='2'/>",
        "<a>&;</a>",
        "<a>&#xZZ;</a>",
        "<a>&#99999999999;</a>",
        "<a><![CDATA[never closed</a>",
        "<!-- only comment -->",
        "<?xml version=\"1.0\"?>",
        "<a/><b/>",
        "text only",
        "<a>\u{0}</a>x<",
        "<a ='v'/>",
        "<1tag/>",
        "<a><b></a></b>",
    ];
    for case in cases {
        match Document::parse(case) {
            Ok(doc) => {
                // The only acceptable successes are genuinely well-formed.
                assert!(
                    doc.root_element().is_some(),
                    "accepted {case:?} without a root"
                );
            }
            Err(e) => {
                // Errors must render without panicking.
                let _ = e.to_string();
            }
        }
    }
}

#[test]
fn parser_handles_deep_nesting_up_to_the_limit() {
    let build = |depth: usize| {
        let mut xml = String::new();
        for i in 0..depth {
            xml.push_str(&format!("<n{i}>"));
        }
        for i in (0..depth).rev() {
            xml.push_str(&format!("</n{i}>"));
        }
        xml
    };
    // Within the limit: parses fine.
    let depth = 200;
    let doc = Document::parse(&build(depth)).expect("deep but well-formed");
    assert_eq!(doc.all_elements().len(), depth);
    let deepest = *doc.all_elements().last().unwrap();
    assert_eq!(doc.depth(deepest), depth - 1);
    // Beyond the limit: a clean error instead of a stack overflow.
    let err = Document::parse(&build(dogmatix_xml::parser::MAX_DEPTH + 10)).unwrap_err();
    assert!(err.to_string().contains("nesting depth"), "{err}");
}

#[test]
fn parser_handles_many_siblings() {
    let n = 50_000;
    let mut xml = String::from("<r>");
    for _ in 0..n {
        xml.push_str("<x/>");
    }
    xml.push_str("</r>");
    let doc = Document::parse(&xml).expect("wide but well-formed");
    assert_eq!(doc.select("/r/x").unwrap().len(), n);
}

#[test]
fn xpath_rejects_garbage_without_panicking() {
    let cases = [
        "",
        "/",
        "//",
        "///",
        "a//",
        "[1]",
        "/a[",
        "/a]",
        "/a[']",
        "/a[=]",
        "/a[@]",
        "/a[@x=]",
        "/a[@x='unclosed]",
        "/a/b[1'2']",
        "/@",
        "$",
        "$doc",
        "/a/*[x",
        "..//",
    ];
    for case in cases {
        assert!(Path::parse(case).is_err(), "accepted {case:?}");
    }
}

#[test]
fn xpath_on_mismatched_document_returns_empty() {
    let doc = Document::parse("<a><b/></a>").unwrap();
    for path in ["/x/y", "/a/b/c/d", "//nothere", "/a/b[title='x']"] {
        assert!(doc.select(path).unwrap().is_empty(), "{path}");
    }
}

#[test]
fn schema_inference_on_degenerate_documents() {
    // Single empty root.
    let s = Schema::infer(&Document::parse("<only/>").unwrap()).unwrap();
    assert_eq!(s.len(), 1);
    // Root with text only.
    let s = Schema::infer(&Document::parse("<only>text</only>").unwrap()).unwrap();
    assert!(s.has_text(s.root()));
    // Huge flat fanout.
    let mut xml = String::from("<r>");
    for i in 0..500 {
        xml.push_str(&format!("<e{i}>v</e{i}>"));
    }
    xml.push_str("</r>");
    let s = Schema::infer(&Document::parse(&xml).unwrap()).unwrap();
    assert_eq!(s.children(s.root()).len(), 500);
}

#[test]
fn entity_bombs_are_not_possible() {
    // Internal DTD subsets (the vector for billion-laughs) are rejected.
    let bomb = r#"<!DOCTYPE lolz [
      <!ENTITY lol "lol">
      <!ENTITY lol2 "&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;&lol;">
    ]><lolz>&lol2;</lolz>"#;
    assert!(Document::parse(bomb).is_err());
}

#[test]
fn huge_attribute_values_roundtrip() {
    let big = "x".repeat(100_000);
    let xml = format!("<a v=\"{big}\"/>");
    let doc = Document::parse(&xml).unwrap();
    assert_eq!(
        doc.attr(doc.root_element().unwrap(), "v").unwrap().len(),
        100_000
    );
    let re = Document::parse(&doc.to_xml()).unwrap();
    assert_eq!(doc, re);
}

#[test]
fn mixed_scripts_and_emoji_content() {
    let xml = "<r><t>日本語 текст العربية 🎵</t></r>";
    let doc = Document::parse(xml).unwrap();
    let t = doc.select("/r/t").unwrap()[0];
    assert_eq!(doc.direct_text(t).unwrap(), "日本語 текст العربية 🎵");
    assert_eq!(doc.to_xml(), xml);
}
