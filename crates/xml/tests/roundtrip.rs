//! Property tests: documents built from arbitrary trees survive
//! serialise → parse round trips, and navigation invariants hold.

use dogmatix_xml::{Document, NodeId};
use proptest::prelude::*;

/// A recipe for building a small random tree.
#[derive(Debug, Clone)]
enum TreeOp {
    Element(String),
    Text(String),
    Up,
}

fn name_strategy() -> impl Strategy<Value = String> {
    proptest::string::string_regex("[a-z][a-z0-9]{0,6}").unwrap()
}

fn text_strategy() -> impl Strategy<Value = String> {
    // Includes characters that must be escaped.
    proptest::string::string_regex("[ a-zA-Z0-9<>&'\"äß]{1,16}").unwrap()
}

fn ops_strategy() -> impl Strategy<Value = Vec<TreeOp>> {
    proptest::collection::vec(
        prop_oneof![
            3 => name_strategy().prop_map(TreeOp::Element),
            2 => text_strategy().prop_map(TreeOp::Text),
            1 => Just(TreeOp::Up),
        ],
        0..40,
    )
}

fn build_doc(ops: &[TreeOp]) -> Document {
    let mut doc = Document::with_root("root");
    let mut stack: Vec<NodeId> = vec![doc.root_element().unwrap()];
    for op in ops {
        match op {
            TreeOp::Element(name) => {
                let parent = *stack.last().unwrap();
                let el = doc.add_element(parent, name);
                stack.push(el);
            }
            TreeOp::Text(t) => {
                let parent = *stack.last().unwrap();
                doc.add_text(parent, t);
            }
            TreeOp::Up => {
                if stack.len() > 1 {
                    stack.pop();
                }
            }
        }
    }
    doc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn serialize_parse_roundtrip(ops in ops_strategy()) {
        let doc = build_doc(&ops);
        let xml = doc.to_xml();
        let reparsed = Document::parse(&xml).unwrap_or_else(|e| {
            panic!("failed to reparse {xml:?}: {e}")
        });
        // Adjacent text nodes may merge on reparse, so compare text
        // content and element structure rather than node-for-node.
        prop_assert_eq!(doc.all_elements().len(), reparsed.all_elements().len());
        let e1 = doc.all_elements();
        let e2 = reparsed.all_elements();
        for (a, b) in e1.iter().zip(e2.iter()) {
            prop_assert_eq!(doc.name(*a), reparsed.name(*b));
            prop_assert_eq!(doc.text_content(*a), reparsed.text_content(*b));
            prop_assert_eq!(doc.name_path(*a), reparsed.name_path(*b));
        }
    }

    #[test]
    fn absolute_paths_resolve_back(ops in ops_strategy()) {
        let doc = build_doc(&ops);
        for el in doc.all_elements() {
            let path = doc.absolute_path(el);
            let found = doc.select(&path).unwrap();
            prop_assert_eq!(found.len(), 1, "path {} not unique", path);
            prop_assert_eq!(found[0], el);
        }
    }

    #[test]
    fn depth_consistent_with_ancestors(ops in ops_strategy()) {
        let doc = build_doc(&ops);
        for el in doc.all_elements() {
            prop_assert_eq!(doc.depth(el), doc.ancestors(el).count());
            if let Some(p) = doc.parent(el) {
                if doc.is_element(p) {
                    prop_assert_eq!(doc.depth(el), doc.depth(p) + 1);
                }
            }
        }
    }

    #[test]
    fn bfs_and_dfs_agree_on_membership(ops in ops_strategy()) {
        let doc = build_doc(&ops);
        let root = doc.root_element().unwrap();
        let mut dfs = doc.descendant_elements(root);
        let mut bfs = doc.breadth_first_elements(root);
        dfs.sort();
        bfs.sort();
        prop_assert_eq!(dfs, bfs);
    }

    #[test]
    fn descendants_within_saturates(ops in ops_strategy()) {
        let doc = build_doc(&ops);
        let root = doc.root_element().unwrap();
        let all = doc.descendant_elements(root).len();
        prop_assert_eq!(doc.descendants_within(root, 1000).len(), all);
        // Monotone in radius.
        let mut prev = 0;
        for r in 0..6 {
            let n = doc.descendants_within(root, r).len();
            prop_assert!(n >= prev);
            prev = n;
        }
    }

    #[test]
    fn inferred_schema_covers_every_name_path(ops in ops_strategy()) {
        let doc = build_doc(&ops);
        let schema = dogmatix_xml::Schema::infer(&doc).unwrap();
        for el in doc.all_elements() {
            let path = doc.name_path(el);
            prop_assert!(
                schema.find_by_path(&path).is_some(),
                "schema missing path {}",
                path
            );
        }
    }
}
