//! CD deduplication on a synthetic FreeDB-like corpus (the paper's
//! Dataset 1 scenario: duplicates differ by typos, missing data, and
//! synonyms).
//!
//! Run with: `cargo run --release --example cd_dedup -- [n]`

use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::Dogmatix;
use dogmatix_repro::datagen::datasets::dataset1_sized;
use dogmatix_repro::eval::metrics::pair_metrics;
use dogmatix_repro::eval::setup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(100);

    // 100 distinct CDs + 1 dirty duplicate each (paper knobs:
    // 20% typos, 10% missing data, 8% synonyms).
    let (doc, gold) = dataset1_sized(42, n);
    let schema = setup::cd_schema();

    // exp1 with the k-closest heuristic at k = 6 — the paper's sweet spot
    // before track titles poison precision.
    let dx = Dogmatix::builder()
        .mapping(setup::cd_mapping())
        .heuristic(table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1))
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .threads(0)
        .build();
    let result = dx.run(&doc, &schema, setup::CD_TYPE)?;

    let m = pair_metrics(&result.duplicate_pairs, &gold);
    println!("candidates        : {}", result.stats.candidates);
    println!("pruned by filter  : {}", result.stats.pruned_by_filter);
    println!(
        "pairs compared    : {} of {}",
        result.stats.pairs_compared, result.stats.pairs_total
    );
    println!("duplicate pairs   : {}", result.duplicate_pairs.len());
    println!("clusters          : {}", result.clusters.len());
    println!("recall            : {:.1}%", m.recall() * 100.0);
    println!("precision         : {:.1}%", m.precision() * 100.0);

    // Show one detected cluster with its data.
    if let Some(cluster) = result.clusters.first() {
        println!("\nexample cluster:");
        for &member in cluster {
            let disc = result.candidates[member];
            let title = doc.select_from(disc, "./title")?;
            let artist = doc.select_from(disc, "./artist")?;
            println!(
                "  {} — {} / {}",
                doc.absolute_path(disc),
                artist
                    .first()
                    .and_then(|a| doc.direct_text(*a))
                    .unwrap_or_default(),
                title
                    .first()
                    .and_then(|t| doc.direct_text(*t))
                    .unwrap_or_default(),
            );
        }
    }
    Ok(())
}
