//! Building custom description-selection heuristics with the combination
//! algebra of Section 4.3: AND/OR over heuristics, AND/OR over
//! conditions, and `h[c]` refinement — including the paper's own example
//! `hra[cme] ∨ hrd[csdt ∧ ccm]` — and plugging the result (or a fully
//! manual selection) into the pipeline through `Dogmatix::builder()`.
//!
//! Run with: `cargo run --example custom_heuristic`

use dogmatix_repro::core::heuristics::{ConditionExpr, HeuristicExpr};
use dogmatix_repro::core::pipeline::Dogmatix;
use dogmatix_repro::core::stage::ManualSelection;
use dogmatix_repro::datagen::cd::{CD_CANDIDATE_PATH, CD_XSD};
use dogmatix_repro::datagen::datasets::dataset1_sized;
use dogmatix_repro::xml::Schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = Schema::parse_xsd(CD_XSD)?;
    let disc = schema
        .find_by_path("/discs/disc")
        .expect("the CD schema declares /discs/disc");

    let show = |name: &str, h: &HeuristicExpr| {
        println!("{name}:");
        for path in h.select_paths(&schema, disc) {
            println!("  {path}");
        }
        println!();
    };

    // The three base heuristics.
    show("hrd (r = 1)", &HeuristicExpr::r_distant_descendants(1));
    show("hrd (r = 2)", &HeuristicExpr::r_distant_descendants(2));
    show("hkd (k = 3)", &HeuristicExpr::k_closest_descendants(3));

    // Conditions refine the selection (Combination 3).
    show(
        "hrd(2)[csdt] — string-typed only",
        &HeuristicExpr::r_distant_descendants(2).refined(ConditionExpr::StringType),
    );
    show(
        "hrd(2)[cme ∧ cse] — mandatory singletons",
        &HeuristicExpr::r_distant_descendants(2)
            .refined(ConditionExpr::Mandatory.and(ConditionExpr::Singleton)),
    );

    // The paper's Section 4.3 example: hra[cme] ∨ hrd[csdt ∧ ccm],
    // evaluated for the track-title element.
    let track_title = schema
        .find_by_path("/discs/disc/tracks/title")
        .expect("the CD schema declares track titles");
    let combined = HeuristicExpr::r_distant_ancestors(1)
        .refined(ConditionExpr::Mandatory)
        .or(HeuristicExpr::r_distant_descendants(1)
            .refined(ConditionExpr::StringType.and(ConditionExpr::ContentModel)));
    println!("paper example hra[cme] ∨ hrd[csdt ∧ ccm] for /discs/disc/tracks/title:");
    for path in combined.select_paths(&schema, track_title) {
        println!("  {path}");
    }

    // AND-combination narrows; OR widens (Combination 1).
    let narrow =
        HeuristicExpr::k_closest_descendants(5).and(HeuristicExpr::r_distant_descendants(1));
    let wide = HeuristicExpr::k_closest_descendants(5).or(HeuristicExpr::r_distant_descendants(2));
    println!(
        "\n|hkd(5) ∧ hrd(1)| = {}, |hkd(5) ∨ hrd(2)| = {}",
        narrow.select(&schema, disc).len(),
        wide.select(&schema, disc).len()
    );

    // Any heuristic expression is itself a DescriptionSelector stage, so
    // it plugs straight into the pipeline through the builder.
    let (doc, _) = dataset1_sized(42, 40);
    let dx = Dogmatix::builder()
        .add_type("DISC", [CD_CANDIDATE_PATH])
        .heuristic(HeuristicExpr::k_closest_descendants(6).refined(ConditionExpr::StringType))
        .build();
    let result = dx.run(&doc, &schema, "DISC")?;
    println!(
        "\nhkd(6)[csdt] end to end: {} candidates -> {} duplicate pairs in {} clusters",
        result.stats.candidates,
        result.duplicate_pairs.len(),
        result.clusters.len()
    );

    // Or skip the heuristics entirely: a ManualSelection pins the OD
    // elements by hand (here: artist + title only).
    let manual = ManualSelection::new().with(
        CD_CANDIDATE_PATH,
        ["/discs/disc/artist", "/discs/disc/title"],
    );
    let dx = Dogmatix::builder()
        .add_type("DISC", [CD_CANDIDATE_PATH])
        .selector(manual)
        .build();
    let result = dx.run(&doc, &schema, "DISC")?;
    println!(
        "manual {{artist, title}} OD spec: {} duplicate pairs in {} clusters",
        result.duplicate_pairs.len(),
        result.clusters.len()
    );
    Ok(())
}
