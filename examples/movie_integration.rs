//! Data-integration scenario (the paper's Dataset 2): one movie universe
//! stored in two differently structured sources — an IMDB-like English
//! schema and a Film-Dienst-like German schema. The mapping `M` makes
//! elements comparable across sources (Table 6), including the composite
//! `firstname + lastname` rule.
//!
//! Run with: `cargo run --release --example movie_integration -- [n]`

use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::Dogmatix;
use dogmatix_repro::datagen::datasets::dataset2_sized;
use dogmatix_repro::eval::metrics::pair_metrics;
use dogmatix_repro::eval::setup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    let (doc, gold) = dataset2_sized(7, n);
    let schema = setup::movie_schema(&doc);
    let mapping = setup::movie_mapping();

    println!("the mapping M (cf. Table 6):");
    print!("{}", mapping.to_text());
    println!();

    // exp2 = h[csdt] — string-typed data only, which drops the
    // always-contradictory dates; the strongest combination on this
    // scenario (see EXPERIMENTS.md).
    for r in 1..=4 {
        let heuristic = table4_heuristic(HeuristicExpr::r_distant_descendants(r), 2);
        let dx = Dogmatix::new(setup::paper_config(heuristic), mapping.clone());
        let result = dx.run(&doc, &schema, setup::MOVIE_TYPE)?;
        let m = pair_metrics(&result.duplicate_pairs, &gold);
        println!(
            "hrd r={r}: {} pairs detected, recall {:5.1}%, precision {:5.1}%",
            result.duplicate_pairs.len(),
            m.recall() * 100.0,
            m.precision() * 100.0
        );
    }

    // Show a cross-source match.
    let heuristic = table4_heuristic(HeuristicExpr::r_distant_descendants(3), 2);
    let dx = Dogmatix::new(setup::paper_config(heuristic), mapping);
    let result = dx.run(&doc, &schema, setup::MOVIE_TYPE)?;
    // Show the most confident detection.
    let best = result
        .duplicate_pairs
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
    if let Some((i, j, sim)) = best {
        println!("\nexample cross-source duplicate (sim {sim:.3}):");
        for &cand in [result.candidates[*i], result.candidates[*j]].iter() {
            println!("  {}", doc.absolute_path(cand));
            let titles = doc.select_from(cand, ".//title")?;
            for t in titles {
                println!("    title: {}", doc.direct_text(t).unwrap_or_default());
            }
        }
    }
    Ok(())
}
