//! Data-integration scenario (the paper's Dataset 2): one movie universe
//! stored in two differently structured sources — an IMDB-like English
//! schema and a Film-Dienst-like German schema. The mapping `M` makes
//! elements comparable across sources (Table 6), including the composite
//! `firstname + lastname` rule.
//!
//! The radius sweep runs against one `DetectionSession`: the parsed
//! corpus, candidate set, and per-selection object descriptions are
//! derived once and shared by all four detector configurations.
//!
//! Run with: `cargo run --release --example movie_integration -- [n]`

use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::DetectionSession;
use dogmatix_repro::datagen::datasets::dataset2_sized;
use dogmatix_repro::eval::metrics::pair_metrics;
use dogmatix_repro::eval::setup;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(120);

    let (doc, gold) = dataset2_sized(7, n);
    let schema = setup::movie_schema(&doc);
    let mapping = setup::movie_mapping();

    println!("the mapping M (cf. Table 6):");
    print!("{}", mapping.to_text());
    println!();

    // One session for the whole sweep.
    let session = DetectionSession::new(&doc, &schema, &mapping, setup::MOVIE_TYPE)?;

    // exp2 = h[csdt] — string-typed data only, which drops the
    // always-contradictory dates; the strongest combination on this
    // scenario (see EXPERIMENTS.md).
    for r in 1..=4 {
        let heuristic = table4_heuristic(HeuristicExpr::r_distant_descendants(r), 2);
        let dx = setup::paper_detector(heuristic, mapping.clone());
        let result = dx.detect(&session)?;
        let m = pair_metrics(&result.duplicate_pairs, &gold);
        println!(
            "hrd r={r}: {} pairs detected, recall {:5.1}%, precision {:5.1}%",
            result.duplicate_pairs.len(),
            m.recall() * 100.0,
            m.precision() * 100.0
        );
    }
    println!(
        "(the session served {} detector runs from {} cached OD sets)",
        4,
        session.cached_od_sets()
    );

    // Show a cross-source match.
    let heuristic = table4_heuristic(HeuristicExpr::r_distant_descendants(3), 2);
    let dx = setup::paper_detector(heuristic, mapping);
    let result = dx.detect(&session)?;
    // Show the most confident detection.
    let best = result
        .duplicate_pairs
        .iter()
        .max_by(|a, b| a.2.partial_cmp(&b.2).unwrap_or(std::cmp::Ordering::Equal));
    if let Some((i, j, sim)) = best {
        println!("\nexample cross-source duplicate (sim {sim:.3}):");
        for &cand in [result.candidates[*i], result.candidates[*j]].iter() {
            println!("  {}", doc.absolute_path(cand));
            let titles = doc.select_from(cand, ".//title")?;
            for t in titles {
                println!("    title: {}", doc.direct_text(t).unwrap_or_default());
            }
        }
    }
    Ok(())
}
