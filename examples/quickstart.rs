//! Quickstart: the paper's running example (Section 3.1).
//!
//! Three movies, one of which ("Matrix") duplicates "The Matrix".
//! We infer the schema, declare the MOVIE type, run DogmatiX, and print
//! the dup-cluster document of Fig. 3.
//!
//! Run with: `cargo run --example quickstart`

use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::pipeline::{Dogmatix, DogmatixConfig};
use dogmatix_repro::core::Mapping;
use dogmatix_repro::xml::{Document, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1 of the paper as an XML document.
    let doc = Document::parse(
        "<moviedoc>\
           <movie><title>The Matrix</title><year>1999</year>\
             <actor><name>Keanu Reeves</name><role>Neo</role></actor>\
             <actor><name>L. Fishburne</name><role>Morpheus</role></actor></movie>\
           <movie><title>Matrix</title><year>1999</year>\
             <actor><name>Keanu Reeves</name><role>The One</role></actor></movie>\
           <movie><title>Signs</title><year>2002</year>\
             <actor><name>Mel Gibson</name><role>Graham Hess</role></actor></movie>\
         </moviedoc>",
    )?;

    // No XSD at hand: infer one from the instance.
    let schema = Schema::infer(&doc)?;

    // The mapping M (Table 3): we only need the candidate type here; the
    // description elements default to identity types.
    let mut mapping = Mapping::new();
    mapping.add_type("MOVIE", ["$doc/moviedoc/movie"]);

    // "Matrix" vs "The Matrix" differ by ned 0.4, so raise θ_tuple above
    // the typo-level default of 0.15 for this tiny demo. The object
    // filter's IDF statistics are degenerate on a 3-element corpus, so
    // comparison reduction is switched off (it exists to tame large Ω).
    let config = DogmatixConfig {
        heuristic: HeuristicExpr::r_distant_descendants(2),
        theta_tuple: 0.45,
        use_filter: false,
        ..DogmatixConfig::default()
    };

    let result = Dogmatix::new(config, mapping).run(&doc, &schema, "MOVIE")?;

    println!("candidates : {}", result.stats.candidates);
    println!("compared   : {} pairs", result.stats.pairs_compared);
    println!("pruned     : {} candidates", result.stats.pruned_by_filter);
    for (i, j, sim) in &result.duplicate_pairs {
        println!(
            "duplicate  : {} ~ {} (sim {:.3})",
            doc.absolute_path(result.candidates[*i]),
            doc.absolute_path(result.candidates[*j]),
            sim
        );
    }

    // The paper's Fig. 3 output document.
    println!("\n{}", result.to_xml(&doc).to_xml_pretty());
    Ok(())
}
