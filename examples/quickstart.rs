//! Quickstart: the paper's running example (Section 3.1).
//!
//! Three movies, one of which ("Matrix") duplicates "The Matrix".
//! We infer the schema, assemble a detector with `Dogmatix::builder()`,
//! run DogmatiX, and print the dup-cluster document of Fig. 3.
//!
//! Run with: `cargo run --example quickstart`

use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::pipeline::Dogmatix;
use dogmatix_repro::xml::{Document, Schema};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Table 1 of the paper as an XML document.
    let doc = Document::parse(
        "<moviedoc>\
           <movie><title>The Matrix</title><year>1999</year>\
             <actor><name>Keanu Reeves</name><role>Neo</role></actor>\
             <actor><name>L. Fishburne</name><role>Morpheus</role></actor></movie>\
           <movie><title>Matrix</title><year>1999</year>\
             <actor><name>Keanu Reeves</name><role>The One</role></actor></movie>\
           <movie><title>Signs</title><year>2002</year>\
             <actor><name>Mel Gibson</name><role>Graham Hess</role></actor></movie>\
         </moviedoc>",
    )?;

    // No XSD at hand: infer one from the instance.
    let schema = Schema::infer(&doc)?;

    // Assemble the detector. The builder registers the MOVIE candidate
    // type (Table 3; description elements default to identity types) and
    // configures the pipeline stage by stage.
    //
    // "Matrix" vs "The Matrix" differ by ned 0.4, so raise θ_tuple above
    // the typo-level default of 0.15 for this tiny demo. The object
    // filter's IDF statistics are degenerate on a 3-element corpus, so
    // comparison reduction is switched off (it exists to tame large Ω).
    let dx = Dogmatix::builder()
        .add_type("MOVIE", ["$doc/moviedoc/movie"])
        .heuristic(HeuristicExpr::r_distant_descendants(2))
        .theta_tuple(0.45)
        .no_filter()
        .build();

    let result = dx.run(&doc, &schema, "MOVIE")?;

    println!("candidates : {}", result.stats.candidates);
    println!("compared   : {} pairs", result.stats.pairs_compared);
    println!("pruned     : {} candidates", result.stats.pruned_by_filter);
    for (i, j, sim) in &result.duplicate_pairs {
        println!(
            "duplicate  : {} ~ {} (sim {:.3})",
            doc.absolute_path(result.candidates[*i]),
            doc.absolute_path(result.candidates[*j]),
            sim
        );
    }

    // The paper's Fig. 3 output document.
    println!("\n{}", result.to_xml(&doc).to_xml_pretty());
    Ok(())
}
