//! Streaming ingest: keep duplicate clusters fresh while the document
//! mutates, without re-running batch detection from scratch.
//!
//! An `IncrementalSession` owns the document; `Dogmatix::detect_delta`
//! applies edits (`DocumentDelta`s), surgically invalidates the cached
//! object descriptions and pair verdicts the edits touched, and
//! re-compares only the affected pairs. The result is always identical
//! to a from-scratch batch run over the current state (the differential
//! suite in `tests/incremental.rs` proves it), but
//! `stats.pairs_compared` shows how little work each refresh costs.
//!
//! Run with: `cargo run --example streaming_dedup`

use dogmatix_repro::core::incremental::DocumentDelta;
use dogmatix_repro::core::pipeline::{DetectionResult, Dogmatix};
use dogmatix_repro::xml::Document;

fn report(step: &str, result: &DetectionResult) {
    println!(
        "{step:<28} candidates={} rescored={:>3} pairs  clusters={:?}",
        result.stats.candidates, result.stats.pairs_compared, result.clusters
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small CD catalogue; two more discs will arrive on the "stream".
    let doc = Document::parse(
        "<discs>\
           <disc><artist>John Coltrane</artist><title>Blue Train</title><year>1957</year></disc>\
           <disc><artist>Miles Davis</artist><title>Kind of Blue</title><year>1959</year></disc>\
           <disc><artist>Dave Brubeck</artist><title>Time Out</title><year>1959</year></disc>\
           <disc><artist>Charles Mingus</artist><title>Ah Um</title><year>1959</year></disc>\
         </discs>",
    )?;

    let dx = Dogmatix::builder()
        .add_type("DISC", ["/discs/disc"])
        .theta_tuple(0.25)
        .no_filter() // tiny corpus: keep every pair comparable
        .build();

    // The session owns the document; the schema is re-inferred when
    // structural deltas arrive (use `incremental_session` with an XSD
    // schema for fixed-schema corpora).
    let mut session = dx.incremental_session_inferred(doc, "DISC")?;

    // Initial run: everything is scored once.
    let result = dx.detect_delta(&mut session, &[])?;
    report("initial corpus", &result);

    // 1. A dirty duplicate of Blue Train arrives (typo in the artist).
    let result = dx.detect_delta(
        &mut session,
        &[DocumentDelta::InsertXml {
            parent_path: "/discs".into(),
            xml: "<disc><artist>John Coltrain</artist><title>Blue Train</title>\
                  <year>1957</year></disc>"
                .into(),
        }],
    )?;
    report("after dirty duplicate", &result);

    // 2. A curator fixes a title typo — only pairs touching that disc
    //    (and discs sharing its terms) are re-compared; the rest replay.
    let result = dx.detect_delta(
        &mut session,
        &[DocumentDelta::UpdateText {
            index: 3,
            path: "title".into(),
            occurrence: 0,
            value: "Mingus Ah Um".into(),
        }],
    )?;
    report("after title fix", &result);

    // 3. The duplicate is resolved by removing the dirty copy.
    let result = dx.detect_delta(&mut session, &[DocumentDelta::RemoveObject { index: 4 }])?;
    report("after removal", &result);

    let c = session.counters();
    println!(
        "\nsession totals: {} deltas, {} detections, {} extractions, \
         {} pairs scored, {} pairs replayed",
        c.deltas_applied, c.detect_runs, c.extractions, c.pairs_scored, c.pairs_reused
    );

    assert!(
        result.duplicate_pairs.is_empty(),
        "the catalogue is clean again"
    );
    Ok(())
}
