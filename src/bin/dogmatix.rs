//! `dogmatix` — command-line duplicate detection for XML files.
//!
//! ```text
//! dogmatix <input.xml> --type <NAME> [options]
//!
//!   --type <NAME>          real-world type to deduplicate (required)
//!   --mapping <file>       mapping M in the line format `NAME: path, path`
//!                          (default: the type name mapped to --candidates)
//!   --candidates <xpath>   candidate path when no mapping file is given
//!   --schema <file.xsd>    XSD (default: inferred from the instance)
//!   --heuristic <spec>     rd:<r> | ra:<r> | kc:<k> | auto   (default rd:1)
//!   --exp <1..8>           Table 4 condition combination     (default 1)
//!   --theta-tuple <f>      similarity threshold for values   (default 0.15)
//!   --theta-cand <f>       duplicate threshold               (default 0.55)
//!   --threads <N>          comparison worker threads; 0 = all cores
//!                          (default 0)
//!   --edit-kernel <k>      edit-distance kernel for the comparison
//!                          phase: 'bitpar' (Myers' bit-parallel
//!                          algorithm, default) or 'scalar' (banded DP);
//!                          kernels are exact, so results are identical
//!   --blocking <qgram|lsh> replace the object filter with a blocking
//!                          stage: a positional q-gram index (q = 2,
//!                          provable superset at θ_tuple) or banded
//!                          MinHash LSH (48 bands × 2 rows)
//!   --index-save <file>    persist the columnar term index to a
//!                          versioned binary snapshot after building it
//!   --index-load <file>    warm-start from a snapshot written by
//!                          --index-save (skips extraction + interning;
//!                          the corpus and selection must match)
//!   --index-paged          use the paged (v2) snapshot format: saves
//!                          write fixed-size pages behind a page
//!                          directory, loads stream them through a
//!                          pinned buffer pool instead of reading the
//!                          whole index into RAM
//!   --mem-budget <bytes>   buffer-pool memory budget for --index-paged
//!                          loads (default 67108864 = 64 MiB); peak
//!                          pool residency never exceeds it
//!   --shards <N>           execute the pair plan through the sharded
//!                          driver with N shards; 0 = one per core
//!   --no-filter            disable comparison reduction
//!   --fuse                 also write a fused (deduplicated) document
//!   --output <file>        write the dup-cluster XML here (default stdout)
//!   --deltas <file>        replay a streaming-delta script against an
//!                          incremental session instead of one batch run
//!   --probe <xml>          one-shot point-query: find the top-k
//!                          duplicates of one record (an XML fragment)
//!                          among the corpus, without a batch run —
//!                          the same query core dogmatixd serves
//!   --probe-k <N>          cap on --probe answers (default 10)
//!   --emit-queries         print the formulated XQueries Q_C and Q_D
//!                          for the active heuristic selection and exit
//! ```
//!
//! ## Delta-script format (`--deltas`)
//!
//! One command per line; blank lines and `#` comments are ignored.
//! Candidate indices refer to the current candidate order; relative
//! paths are resolved from the candidate element (`.` = the candidate):
//!
//! ```text
//! insert <parent_path> <xml fragment>
//! remove <index>
//! update <index> <rel_path> <occurrence> <new text value>
//! insert-under <index> <rel_path> <occurrence> <xml fragment>
//! remove-element <index> <rel_path> <occurrence>
//! detect
//! ```
//!
//! Each `detect` applies the accumulated deltas incrementally and prints
//! run statistics; trailing deltas are flushed by a final implicit
//! `detect`. The dup-cluster output reflects the final state.

use dogmatix_repro::core::auto;
use dogmatix_repro::core::backend::paged::PagedBackend;
use dogmatix_repro::core::backend::SnapshotBackend;
use dogmatix_repro::core::filter::{MinHashLshBlocking, QGramBlocking};
use dogmatix_repro::core::fusion::{fuse_clusters, FusionConfig};
use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::incremental::DocumentDelta;
use dogmatix_repro::core::pipeline::{DetectionResult, Dogmatix};
use dogmatix_repro::core::probe::{ProbeBlocking, ProbeScratch, ProbeSnapshot};
use dogmatix_repro::core::sim::EditKernelChoice;
use dogmatix_repro::core::Mapping;
use dogmatix_repro::xml::{Document, Schema};
use std::process::ExitCode;

struct Options {
    input: String,
    rw_type: String,
    mapping_file: Option<String>,
    candidates: Option<String>,
    schema_file: Option<String>,
    heuristic: String,
    exp: usize,
    theta_tuple: f64,
    theta_cand: f64,
    threads: usize,
    edit_kernel: EditKernelChoice,
    blocking: Option<Blocking>,
    shards: Option<usize>,
    index_save: Option<String>,
    index_load: Option<String>,
    index_paged: bool,
    mem_budget: Option<usize>,
    use_filter: bool,
    fuse: bool,
    output: Option<String>,
    deltas: Option<String>,
    probe: Option<String>,
    probe_k: usize,
    emit_queries: bool,
}

/// The `--blocking` strategies, parsed once so the detector wiring
/// cannot drift from the flag validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Blocking {
    QGram,
    Lsh,
}

impl std::str::FromStr for Blocking {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "qgram" => Ok(Blocking::QGram),
            "lsh" => Ok(Blocking::Lsh),
            other => Err(format!(
                "--blocking must be 'qgram' or 'lsh', got '{other}'"
            )),
        }
    }
}

/// Every flag the CLI understands, for error suggestions.
const KNOWN_FLAGS: &[&str] = &[
    "--type",
    "--mapping",
    "--candidates",
    "--schema",
    "--heuristic",
    "--exp",
    "--theta-tuple",
    "--theta-cand",
    "--threads",
    "--edit-kernel",
    "--blocking",
    "--shards",
    "--index-save",
    "--index-load",
    "--index-paged",
    "--mem-budget",
    "--no-filter",
    "--fuse",
    "--output",
    "--deltas",
    "--probe",
    "--probe-k",
    "--emit-queries",
    "--help",
];

/// An actionable message for an unrecognised flag: names the flag and
/// suggests the closest known one when the edit distance is plausible.
fn unknown_flag_error(flag: &str) -> String {
    let closest = KNOWN_FLAGS
        .iter()
        .map(|known| (dogmatix_repro::textsim::levenshtein(flag, known), *known))
        .min()
        .filter(|(dist, _)| *dist <= 3);
    match closest {
        Some((_, suggestion)) => {
            format!("unknown flag '{flag}' (did you mean '{suggestion}'?)\n{HELP}")
        }
        None => format!("unknown flag '{flag}'\n{HELP}"),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        input: String::new(),
        rw_type: String::new(),
        mapping_file: None,
        candidates: None,
        schema_file: None,
        heuristic: "rd:1".to_string(),
        exp: 1,
        theta_tuple: 0.15,
        theta_cand: 0.55,
        threads: 0,
        edit_kernel: EditKernelChoice::default(),
        blocking: None,
        shards: None,
        index_save: None,
        index_load: None,
        index_paged: false,
        mem_budget: None,
        use_filter: true,
        fuse: false,
        output: None,
        deltas: None,
        probe: None,
        probe_k: 10,
        emit_queries: false,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| -> Result<String, String> {
            args.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--type" => opts.rw_type = value("--type")?,
            "--mapping" => opts.mapping_file = Some(value("--mapping")?),
            "--candidates" => opts.candidates = Some(value("--candidates")?),
            "--schema" => opts.schema_file = Some(value("--schema")?),
            "--heuristic" => opts.heuristic = value("--heuristic")?,
            "--exp" => {
                opts.exp = value("--exp")?
                    .parse()
                    .map_err(|_| "--exp must be 1..8".to_string())?
            }
            "--theta-tuple" => {
                opts.theta_tuple = value("--theta-tuple")?
                    .parse()
                    .map_err(|_| "--theta-tuple must be a number".to_string())?
            }
            "--theta-cand" => {
                opts.theta_cand = value("--theta-cand")?
                    .parse()
                    .map_err(|_| "--theta-cand must be a number".to_string())?
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a non-negative integer".to_string())?
            }
            "--edit-kernel" => opts.edit_kernel = value("--edit-kernel")?.parse()?,
            "--blocking" => opts.blocking = Some(value("--blocking")?.parse()?),
            "--shards" => {
                opts.shards = Some(
                    value("--shards")?
                        .parse()
                        .map_err(|_| "--shards must be a non-negative integer".to_string())?,
                )
            }
            "--index-save" => opts.index_save = Some(value("--index-save")?),
            "--index-load" => opts.index_load = Some(value("--index-load")?),
            "--index-paged" => opts.index_paged = true,
            "--mem-budget" => {
                opts.mem_budget = Some(
                    value("--mem-budget")?
                        .parse()
                        .map_err(|_| "--mem-budget must be a byte count".to_string())?,
                )
            }
            "--no-filter" => opts.use_filter = false,
            "--fuse" => opts.fuse = true,
            "--output" => opts.output = Some(value("--output")?),
            "--deltas" => opts.deltas = Some(value("--deltas")?),
            "--probe" => opts.probe = Some(value("--probe")?),
            "--probe-k" => {
                opts.probe_k = value("--probe-k")?
                    .parse()
                    .map_err(|_| "--probe-k must be a positive integer".to_string())?
            }
            "--emit-queries" => opts.emit_queries = true,
            "--help" | "-h" => return Err(HELP.to_string()),
            other if other.starts_with('-') => return Err(unknown_flag_error(other)),
            other if opts.input.is_empty() => opts.input = other.to_string(),
            other => {
                return Err(format!(
                    "unexpected positional argument '{other}' \
                     (the input file is already '{}')\n{HELP}",
                    opts.input
                ))
            }
        }
    }
    if opts.input.is_empty() {
        return Err(format!("missing input file\n{HELP}"));
    }
    if opts.rw_type.is_empty() {
        return Err(format!("--type is required\n{HELP}"));
    }
    if opts.index_save.is_some() && opts.index_load.is_some() {
        return Err("--index-save and --index-load are mutually exclusive".to_string());
    }
    if (opts.index_save.is_some() || opts.index_load.is_some()) && opts.deltas.is_some() {
        return Err(
            "--index-save/--index-load apply to batch runs, not --deltas replay".to_string(),
        );
    }
    if opts.index_paged && opts.index_save.is_none() && opts.index_load.is_none() {
        return Err("--index-paged needs --index-save or --index-load".to_string());
    }
    if opts.mem_budget.is_some() && !opts.index_paged {
        return Err("--mem-budget only applies to --index-paged".to_string());
    }
    if opts.probe.is_some() && opts.deltas.is_some() {
        return Err("--probe is a one-shot point-query, not a --deltas replay".to_string());
    }
    Ok(opts)
}

const HELP: &str = "usage: dogmatix <input.xml> --type <NAME> \
[--mapping m.txt | --candidates /path] [--schema s.xsd] \
[--heuristic rd:<r>|ra:<r>|kc:<k>|auto] [--exp 1..8] \
[--theta-tuple f] [--theta-cand f] [--threads N] \
[--edit-kernel scalar|bitpar] [--blocking qgram|lsh] \
[--shards N] [--no-filter] [--fuse] \
[--index-save f | --index-load f] [--index-paged [--mem-budget bytes]] \
[--output out.xml] [--deltas script.txt] \
[--probe '<xml>' [--probe-k N]] [--emit-queries]";

fn run(opts: Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.input)
        .map_err(|e| format!("cannot read {}: {e}", opts.input))?;
    let doc = Document::parse(&text).map_err(|e| e.to_string())?;

    let schema = match &opts.schema_file {
        Some(path) => {
            let xsd =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Schema::parse_xsd(&xsd).map_err(|e| e.to_string())?
        }
        None => Schema::infer(&doc).map_err(|e| e.to_string())?,
    };

    let mapping = match (&opts.mapping_file, &opts.candidates) {
        (Some(path), _) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            Mapping::parse(&text).map_err(|e| e.to_string())?
        }
        (None, Some(candidate_path)) => {
            let mut m = Mapping::new();
            m.add_type(&opts.rw_type, [candidate_path.as_str()]);
            m
        }
        (None, None) => {
            // Last resort: suggest candidates automatically.
            let suggestions = auto::suggest_candidates(&schema);
            let best = suggestions
                .first()
                .ok_or("no candidate elements found; pass --candidates")?;
            eprintln!(
                "note: no mapping given — using suggested candidate path {}",
                best.path
            );
            let mut m = Mapping::new();
            m.add_type(&opts.rw_type, [best.path.as_str()]);
            m
        }
    };

    let candidate_path = mapping
        .paths_of(&opts.rw_type)
        .and_then(|p| p.first().cloned())
        .ok_or_else(|| format!("type '{}' has no paths in the mapping", opts.rw_type))?;

    let base = match opts.heuristic.split_once(':') {
        Some(("rd", r)) => {
            HeuristicExpr::r_distant_descendants(r.parse().map_err(|_| "bad radius".to_string())?)
        }
        Some(("ra", r)) => {
            HeuristicExpr::r_distant_ancestors(r.parse().map_err(|_| "bad radius".to_string())?)
        }
        Some(("kc", k)) => {
            HeuristicExpr::k_closest_descendants(k.parse().map_err(|_| "bad k".to_string())?)
        }
        None if opts.heuristic == "auto" => {
            let (h, stats) = auto::recommend_k(&doc, &schema, &mapping, &candidate_path, 12, 1.0);
            eprintln!(
                "note: auto heuristic chose {h:?} from {} stats rows",
                stats.len()
            );
            h
        }
        _ => return Err(format!("unknown heuristic '{}'", opts.heuristic)),
    };
    let heuristic = table4_heuristic(base, opts.exp);

    let mut builder = Dogmatix::builder()
        .mapping(mapping)
        .heuristic(heuristic)
        .theta_tuple(opts.theta_tuple)
        .theta_cand(opts.theta_cand)
        .threads(opts.threads)
        .edit_kernel(opts.edit_kernel);
    if !opts.use_filter {
        builder = builder.no_filter();
    }
    match opts.blocking {
        Some(Blocking::QGram) => builder = builder.filter(QGramBlocking::new(2, opts.theta_tuple)),
        Some(Blocking::Lsh) => builder = builder.filter(MinHashLshBlocking::new(48, 2)),
        None => {}
    }
    if let Some(shards) = opts.shards {
        builder = builder.sharded(shards);
    }
    let mem_budget = opts.mem_budget.unwrap_or(64 << 20);
    if let Some(path) = &opts.index_save {
        if opts.index_paged {
            builder = builder.index_backend(PagedBackend::save(path, mem_budget));
            eprintln!("note: paged (v2) term-index snapshot will be written to {path}");
        } else {
            builder = builder.index_backend(SnapshotBackend::save(path));
            eprintln!("note: term-index snapshot will be written to {path}");
        }
    }
    if let Some(path) = &opts.index_load {
        if opts.index_paged {
            builder = builder.index_backend(PagedBackend::open(path, mem_budget));
            eprintln!(
                "note: warm-starting from paged term-index snapshot {path} \
                 under a {mem_budget} B pool budget"
            );
        } else {
            builder = builder.index_backend(SnapshotBackend::load(path));
            eprintln!("note: warm-starting from term-index snapshot {path}");
        }
    }
    let dx = builder.build();

    if opts.emit_queries {
        let queries = dx
            .formulated_queries(&schema, &opts.rw_type)
            .map_err(|e| e.to_string())?;
        println!("Q_C:\n{}", queries.candidate_query);
        for (path, _, qd) in &queries.description_queries {
            println!("\nQ_D {path}:\n{qd}");
        }
        return Ok(());
    }

    if let Some(probe_xml) = &opts.probe {
        return run_probe(&dx, &doc, &schema, &opts, probe_xml);
    }

    let (result, doc) = match &opts.deltas {
        None => {
            let result = dx
                .run(&doc, &schema, &opts.rw_type)
                .map_err(|e| e.to_string())?;
            report_stats("batch", &result);
            (result, doc)
        }
        Some(path) => {
            let script =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            replay_deltas(&dx, doc, &schema, &opts, &script)?
        }
    };

    let out_xml = result.to_xml(&doc).to_xml_pretty();
    match &opts.output {
        Some(path) => {
            std::fs::write(path, out_xml).map_err(|e| format!("cannot write {path}: {e}"))?
        }
        None => println!("{out_xml}"),
    }

    if opts.fuse {
        let fused = fuse_clusters(
            &doc,
            &result.candidates,
            &result.clusters,
            FusionConfig {
                theta_tuple: opts.theta_tuple,
            },
        );
        let fused_path = format!("{}.fused.xml", opts.input.trim_end_matches(".xml"));
        std::fs::write(&fused_path, fused.to_xml_pretty())
            .map_err(|e| format!("cannot write {fused_path}: {e}"))?;
        eprintln!("fused document written to {fused_path}");
    }
    Ok(())
}

/// One-shot `--probe` mode: answers a point-query over a freshly built
/// probe snapshot — the same code path `dogmatixd` serves over TCP.
fn run_probe(
    dx: &Dogmatix,
    doc: &Document,
    schema: &Schema,
    opts: &Options,
    probe_xml: &str,
) -> Result<(), String> {
    let blocking = match (opts.blocking, opts.use_filter) {
        (Some(Blocking::Lsh), _) => ProbeBlocking::Lsh(MinHashLshBlocking::new(48, 2)),
        (Some(Blocking::QGram), _) | (None, true) => {
            ProbeBlocking::QGram(QGramBlocking::new(2, opts.theta_tuple))
        }
        (None, false) => ProbeBlocking::Exhaustive,
    };
    let snapshot = ProbeSnapshot::from_batch(dx, doc, schema, &opts.rw_type, blocking)
        .map_err(|e| e.to_string())?;
    let record = snapshot
        .record_from_xml(probe_xml)
        .map_err(|e| e.to_string())?;
    let mut scratch = ProbeScratch::new();
    let answer = snapshot
        .probe(&record, opts.probe_k, &mut scratch)
        .map_err(|e| e.to_string())?;
    for m in &answer.matches {
        println!("{}\t{}", m.index, m.sim);
    }
    eprintln!(
        "probe: {} duplicates (top {} shown), examined {} of {} candidates",
        answer.matches.len(),
        opts.probe_k,
        answer.stats.candidates_examined,
        answer.stats.total_objects
    );
    Ok(())
}

fn report_stats(label: &str, result: &DetectionResult) {
    eprintln!(
        "{label}: candidates: {}, pruned: {}, compared: {} pairs, \
         duplicates: {} pairs in {} clusters",
        result.stats.candidates,
        result.stats.pruned_by_filter,
        result.stats.pairs_compared,
        result.duplicate_pairs.len(),
        result.clusters.len()
    );
}

/// One parsed line of a `--deltas` script.
enum ScriptLine {
    Delta(DocumentDelta),
    Detect,
}

/// Parses one non-empty, non-comment script line. The delta grammar
/// itself lives in [`DocumentDelta::parse`] (shared with `dogmatixd`'s
/// `INGEST` command); the script adds only the `detect` boundary.
fn parse_delta_line(line: &str) -> Result<ScriptLine, String> {
    let cmd = line.split(char::is_whitespace).next().unwrap_or_default();
    if cmd == "detect" {
        return Ok(ScriptLine::Detect);
    }
    DocumentDelta::parse(line)
        .map(ScriptLine::Delta)
        .map_err(|e| e.to_string())
}

/// Replays a delta script against an incremental session, returning the
/// final detection result and final document state.
fn replay_deltas(
    dx: &Dogmatix,
    doc: Document,
    schema: &Schema,
    opts: &Options,
    script: &str,
) -> Result<(DetectionResult, Document), String> {
    // With an explicit XSD the schema is fixed; otherwise it tracks the
    // mutating document, exactly as batch re-inference would.
    let mut session = if opts.schema_file.is_some() {
        dx.incremental_session(doc, schema.clone(), &opts.rw_type)
    } else {
        dx.incremental_session_inferred(doc, &opts.rw_type)
    }
    .map_err(|e| e.to_string())?;

    let mut result = dx
        .detect_delta(&mut session, &[])
        .map_err(|e| e.to_string())?;
    report_stats("initial", &result);

    let script_path = opts.deltas.as_deref().unwrap_or("deltas");
    let mut batch: Vec<DocumentDelta> = Vec::new();
    let mut detections = 0usize;
    for (lineno, raw) in script.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        match parse_delta_line(line).map_err(|e| format!("{script_path}:{}: {e}", lineno + 1))? {
            ScriptLine::Delta(d) => batch.push(d),
            ScriptLine::Detect => {
                result = dx
                    .detect_delta(&mut session, &batch)
                    .map_err(|e| format!("{script_path}:{}: {e}", lineno + 1))?;
                detections += 1;
                report_stats(
                    &format!("detect #{detections} ({} deltas)", batch.len()),
                    &result,
                );
                batch.clear();
            }
        }
    }
    if !batch.is_empty() {
        result = dx
            .detect_delta(&mut session, &batch)
            .map_err(|e| e.to_string())?;
        detections += 1;
        report_stats(
            &format!("detect #{detections} ({} deltas)", batch.len()),
            &result,
        );
    }
    let c = session.counters();
    eprintln!(
        "replay totals: {} deltas, {} detections, {} pairs scored, {} pairs replayed",
        c.deltas_applied, c.detect_runs, c.pairs_scored, c.pairs_reused
    );
    Ok((result, session.into_doc()))
}

fn main() -> ExitCode {
    match parse_args().and_then(run) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
