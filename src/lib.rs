//! Umbrella crate for the DogmatiX reproduction: re-exports the workspace
//! crates so examples and integration tests can use a single dependency.

pub use dogmatix_core as core;
pub use dogmatix_datagen as datagen;
pub use dogmatix_eval as eval;
pub use dogmatix_server as server;
pub use dogmatix_textsim as textsim;
pub use dogmatix_xml as xml;
