//! Mutation suite for the store auditor: decompose a healthy `OdSet`
//! into raw columns, seed exactly one corruption, rebuild, and assert
//! the auditor reports exactly that invariant — no cascade of
//! secondary violations, no misattribution. A clean rebuild must stay
//! clean. Runs only with `--features audit`, which compiles the
//! raw-column corruption hooks.
#![cfg(feature = "audit")]

use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::Dogmatix;
use dogmatix_repro::core::store::audit::mutate::{decompose, rebuild, RawColumns};
use dogmatix_repro::core::store::audit::{AuditKind, StoreAuditor};
use dogmatix_repro::core::store::Span;
use dogmatix_repro::datagen::datasets::dataset1_sized;
use dogmatix_repro::eval::setup;

/// Raw columns of a real OD set: the seeded CD corpus run through the
/// full pipeline (which itself passes the stage-boundary audit gates).
fn healthy_columns() -> RawColumns {
    let (doc, _) = dataset1_sized(9, 30);
    let schema = setup::cd_schema();
    let mapping = setup::cd_mapping();
    let dx = Dogmatix::builder()
        .mapping(mapping)
        .heuristic(table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1))
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .build();
    let result = dx.run(&doc, &schema, setup::CD_TYPE).expect("corpus runs");
    decompose(&result.ods)
}

/// Seeds one corruption and asserts the auditor reports exactly `kind`.
fn expect_exactly(kind: AuditKind, corrupt: impl FnOnce(&mut RawColumns)) {
    let mut cols = healthy_columns();
    corrupt(&mut cols);
    let ods = rebuild(cols);
    let report = StoreAuditor::audit(&ods);
    assert!(!report.is_clean(), "corruption went undetected");
    assert_eq!(report.kinds(), vec![kind], "wrong attribution:\n{report}");
}

#[test]
fn decompose_rebuild_roundtrip_stays_clean() {
    let ods = rebuild(healthy_columns());
    let report = StoreAuditor::audit(&ods);
    assert!(report.is_clean(), "{report}");
}

#[test]
fn unsorted_posting_list_is_posting_unsorted() {
    expect_exactly(AuditKind::PostingUnsorted, |cols| {
        // Find a term with at least two postings and swap the first
        // pair; strictly-ascending lists become descending there.
        let t = (0..cols.posting_starts.len() - 1)
            .find(|&t| cols.posting_starts[t + 1] - cols.posting_starts[t] >= 2)
            .expect("some term occurs in two objects");
        let s = cols.posting_starts[t] as usize;
        cols.postings.swap(s, s + 1);
    });
}

#[test]
fn dangling_tuple_span_is_span_out_of_bounds() {
    expect_exactly(AuditKind::SpanOutOfBounds, |cols| {
        let past_end = cols.arena.len() as u32;
        cols.tuple_value[0] = Span::new(past_end, 4);
    });
}

#[test]
fn non_monotone_posting_csr_is_csr_not_monotone() {
    expect_exactly(AuditKind::CsrNotMonotone, |cols| {
        // Keep the shape (first = 0, last = data len) but break the
        // interior ordering.
        assert!(cols.posting_starts.len() >= 3, "need at least two terms");
        cols.posting_starts[1] = cols.posting_starts[2] + 1;
    });
}

#[test]
fn duplicate_interned_term_is_duplicate_term() {
    expect_exactly(AuditKind::DuplicateTerm, |cols| {
        // Make term 1 a byte-for-byte twin of term 0 under the same
        // type. char_len is copied too so only the interner-bucket
        // invariant breaks, not the derived columns.
        cols.term_norm[1] = cols.term_norm[0];
        cols.term_type[1] = cols.term_type[0];
        cols.term_char_len[1] = cols.term_char_len[0];
    });
}

#[test]
fn stale_object_id_in_postings_is_posting_out_of_range() {
    expect_exactly(AuditKind::PostingOutOfRange, |cols| {
        // An object index >= |Ω| — the signature of a posting that
        // survived from a previous, larger candidate set.
        cols.postings[0] = cols.object_count;
    });
}

#[test]
fn idf_disagreeing_with_postings_is_idf_mismatch() {
    expect_exactly(AuditKind::IdfMismatch, |cols| {
        cols.term_idf[0] += 0.5;
    });
}

#[test]
fn out_of_range_type_id_is_type_id_out_of_range() {
    expect_exactly(AuditKind::TypeIdOutOfRange, |cols| {
        cols.term_type[0] = cols.type_names.len() as u32;
    });
}

#[test]
fn group_member_outside_od_is_group_offsets_broken() {
    expect_exactly(AuditKind::GroupOffsetsBroken, |cols| {
        // A group member index far past any OD's tuple count.
        cols.group_tuples[0] = 1_000_000;
    });
}

#[test]
fn unsorted_group_types_are_group_type_mismatch() {
    expect_exactly(AuditKind::GroupTypeMismatch, |cols| {
        // Swap the first OD's first two group types: both ids stay
        // valid, but the strictly-ascending group order breaks.
        let (g_lo, g_hi) = (
            cols.od_group_starts[0] as usize,
            cols.od_group_starts[1] as usize,
        );
        assert!(g_hi - g_lo >= 2, "OD 0 has at least two groups");
        cols.group_types.swap(g_lo, g_lo + 1);
    });
}

#[test]
fn stale_char_len_is_char_len_mismatch() {
    expect_exactly(AuditKind::CharLenMismatch, |cols| {
        cols.term_char_len[0] += 1;
    });
}

#[test]
fn stale_type_stats_are_stats_mismatch() {
    expect_exactly(AuditKind::StatsMismatch, |cols| {
        cols.type_stats[0].terms += 1;
    });
}

#[test]
fn dropped_candidate_node_is_node_count_mismatch() {
    expect_exactly(AuditKind::NodeCountMismatch, |cols| {
        // Empty node lists are legal (snapshot loads), but a partial
        // list can no longer be the candidate set that produced Ω.
        cols.nodes.pop();
    });
}

#[test]
fn out_of_range_tuple_term_is_tuple_term_out_of_range() {
    expect_exactly(AuditKind::TupleTermOutOfRange, |cols| {
        cols.tuple_term[0] = cols.term_norm.len() as u32;
    });
}

#[test]
fn rewritten_posting_is_posting_mismatch() {
    expect_exactly(AuditKind::PostingMismatch, |cols| {
        // Replace one single-entry posting list's object with its
        // predecessor: still sorted, still in range, same length (so
        // stats and IDF agree) — but no longer the list the tuple
        // columns imply.
        let t = (0..cols.posting_starts.len() - 1)
            .find(|&t| {
                let s = cols.posting_starts[t] as usize;
                let e = cols.posting_starts[t + 1] as usize;
                e - s == 1 && cols.postings[s] > 0
            })
            .expect("some term occurs only in a later object");
        let s = cols.posting_starts[t] as usize;
        cols.postings[s] -= 1;
    });
}
