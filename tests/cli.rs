//! Integration tests for the `dogmatix` command-line binary.

use std::process::Command;

fn write_sample() -> tempdir::TempPaths {
    tempdir::setup()
}

/// Minimal self-contained temp-file helpers (no tempfile crate).
mod tempdir {
    use std::path::PathBuf;

    pub struct TempPaths {
        pub dir: PathBuf,
        pub input: PathBuf,
        pub mapping: PathBuf,
        pub output: PathBuf,
    }

    pub fn setup() -> TempPaths {
        let dir = std::env::temp_dir().join(format!(
            "dogmatix-cli-test-{}-{}",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        ));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let input = dir.join("movies.xml");
        std::fs::write(
            &input,
            "<moviedoc>\
               <movie><title>The Matrix</title><year>1999</year></movie>\
               <movie><title>The Matrrix</title><year>1999</year></movie>\
               <movie><title>Signs</title><year>2002</year></movie>\
             </moviedoc>",
        )
        .expect("write input");
        let mapping = dir.join("mapping.txt");
        std::fs::write(&mapping, "MOVIE: $doc/moviedoc/movie\n").expect("write mapping");
        TempPaths {
            output: dir.join("dups.xml"),
            dir,
            input,
            mapping,
        }
    }
}

fn dogmatix() -> Command {
    Command::new(env!("CARGO_BIN_EXE_dogmatix"))
}

#[test]
fn detects_duplicates_with_mapping_file() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--output", paths.output.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&paths.output).expect("output written");
    assert!(written.contains("dupcluster"), "{written}");
    assert!(written.contains("/moviedoc[1]/movie[1]"));
    assert!(written.contains("/moviedoc[1]/movie[2]"));
    assert!(!written.contains("movie[3]"), "Signs is not a duplicate");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn suggests_candidates_without_mapping() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("suggested candidate path /moviedoc/movie"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn fuse_writes_deduplicated_document() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter", "--fuse"])
        .args(["--output", paths.output.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let fused_path = paths.dir.join("movies.fused.xml");
    let fused = std::fs::read_to_string(&fused_path).expect("fused written");
    assert!(fused.contains("fused-from=\"2\""), "{fused}");
    // 2 movies remain: the fused pair + Signs ("<movie>" and
    // "<movie fused-from…>"; "<moviedoc>" must not be counted).
    let count = fused.matches("<movie>").count() + fused.matches("<movie ").count();
    assert_eq!(count, 2, "{fused}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn rejects_missing_arguments() {
    let out = dogmatix().output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn rejects_unknown_type() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "NOPE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn threads_flag_is_accepted() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter", "--threads", "2"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--output", paths.output.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let written = std::fs::read_to_string(&paths.output).expect("output written");
    assert!(written.contains("dupcluster"), "{written}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn threads_flag_rejects_non_numbers() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--threads", "many"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--threads must be a non-negative integer"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn blocking_and_shards_flags_detect_the_same_duplicates() {
    for blocking in ["qgram", "lsh"] {
        let paths = write_sample();
        let out = dogmatix()
            .arg(&paths.input)
            .args(["--type", "MOVIE", "--blocking", blocking])
            .args(["--shards", "4"])
            .args(["--mapping", paths.mapping.to_str().unwrap()])
            .args(["--output", paths.output.to_str().unwrap()])
            .output()
            .expect("binary runs");
        assert!(
            out.status.success(),
            "--blocking {blocking}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let written = std::fs::read_to_string(&paths.output).expect("output written");
        assert!(written.contains("/moviedoc[1]/movie[1]"), "{written}");
        assert!(written.contains("/moviedoc[1]/movie[2]"), "{written}");
        assert!(!written.contains("movie[3]"), "{written}");
        let _ = std::fs::remove_dir_all(&paths.dir);
    }
}

#[test]
fn blocking_flag_rejects_unknown_strategies() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--blocking", "sorted-hat"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--blocking must be 'qgram' or 'lsh'"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn shards_flag_rejects_non_numbers() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--shards", "lots"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--shards must be a non-negative integer"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn unknown_flag_is_named_and_corrected() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--thread", "2"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown flag '--thread'"), "{stderr}");
    assert!(stderr.contains("did you mean '--threads'?"), "{stderr}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn stray_positional_argument_is_reported() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .arg("second-file.xml")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unexpected positional argument 'second-file.xml'"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn deltas_script_replays_incrementally() {
    let paths = write_sample();
    let script = paths.dir.join("deltas.txt");
    std::fs::write(
        &script,
        "# fix the typo, then watch a new duplicate of Signs arrive\n\
         update 1 title 0 The Matrix\n\
         detect\n\
         insert /moviedoc <movie><title>Signs</title><year>2002</year></movie>\n\
         remove-element 0 title 0\n\
         insert-under 0 . 0 <title>The Matrix</title>\n",
    )
    .expect("write script");
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--deltas", script.to_str().unwrap()])
        .args(["--output", paths.output.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("initial: candidates: 3"), "{stderr}");
    assert!(stderr.contains("detect #1 (1 deltas)"), "{stderr}");
    assert!(
        stderr.contains("detect #2 (3 deltas)"),
        "trailing deltas flush implicitly: {stderr}"
    );
    assert!(stderr.contains("replay totals: 4 deltas"), "{stderr}");
    // Final state: 4 movies, two duplicate pairs (Matrix pair + Signs pair).
    let written = std::fs::read_to_string(&paths.output).expect("output written");
    assert_eq!(written.matches("<dupcluster").count(), 2, "{written}");
    assert!(written.contains("movie[4]"), "{written}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn bad_delta_script_reports_the_line() {
    let paths = write_sample();
    let script = paths.dir.join("deltas.txt");
    std::fs::write(&script, "frobnicate 1 2 3\n").expect("write script");
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--deltas", script.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown delta command 'frobnicate'"),
        "{stderr}"
    );
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn index_save_then_load_produces_identical_output() {
    let paths = write_sample();
    let index = paths.dir.join("movies.index");
    let save_out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--index-save", index.to_str().unwrap()])
        .args(["--output", paths.output.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        save_out.status.success(),
        "{}",
        String::from_utf8_lossy(&save_out.stderr)
    );
    assert!(index.exists(), "snapshot file written");
    let cold = std::fs::read_to_string(&paths.output).expect("output written");

    let warm_path = paths.dir.join("warm.xml");
    let load_out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--index-load", index.to_str().unwrap()])
        .args(["--output", warm_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        load_out.status.success(),
        "{}",
        String::from_utf8_lossy(&load_out.stderr)
    );
    let warm = std::fs::read_to_string(&warm_path).expect("warm output written");
    assert_eq!(cold, warm, "snapshot warm start must be bit-identical");
    assert!(String::from_utf8_lossy(&load_out.stderr).contains("warm-starting"));
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn index_load_rejects_corrupted_snapshots_cleanly() {
    let paths = write_sample();
    let index = paths.dir.join("garbage.index");
    std::fs::write(&index, b"this is not a snapshot at all").unwrap();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--index-load", index.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success(), "corrupted snapshot must fail");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("term-index snapshot error"), "{stderr}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn index_flags_are_mutually_exclusive_and_batch_only() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--index-save", "a.index", "--index-load", "b.index"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("mutually exclusive"));

    let deltas = paths.dir.join("script.txt");
    std::fs::write(&deltas, "detect\n").unwrap();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--index-save", "a.index"])
        .args(["--deltas", deltas.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("batch runs"));
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn emit_queries_prints_candidate_and_description_queries() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter", "--emit-queries"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("Q_C:"), "{stdout}");
    assert!(stdout.contains("$doc/moviedoc/movie"), "{stdout}");
    assert!(stdout.contains("Q_D /moviedoc/movie:"), "{stdout}");
    assert!(stdout.contains("<od>"), "{stdout}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn probe_answers_point_queries_without_detection_output() {
    let paths = write_sample();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE", "--no-filter"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args([
            "--probe",
            "<movie><title>The Matrix</title><year>1999</year></movie>",
        ])
        .args(["--probe-k", "2"])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    // Both Matrix variants match the probe record; Signs does not.
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 2, "{stdout}");
    assert!(lines[0].starts_with("0\t"), "{stdout}");
    assert!(lines[1].starts_with("1\t"), "{stdout}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("examined"), "{stderr}");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn probe_conflicts_with_deltas() {
    let paths = write_sample();
    let deltas = paths.dir.join("script.txt");
    std::fs::write(&deltas, "detect\n").unwrap();
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--probe", "<movie><title>X</title></movie>"])
        .args(["--deltas", deltas.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn index_paged_save_then_load_produces_identical_output() {
    let paths = write_sample();
    let index = paths.dir.join("movies.dxts2");
    let save_out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--index-save", index.to_str().unwrap()])
        .arg("--index-paged")
        .args(["--output", paths.output.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        save_out.status.success(),
        "{}",
        String::from_utf8_lossy(&save_out.stderr)
    );
    assert!(String::from_utf8_lossy(&save_out.stderr).contains("paged (v2)"));
    let image = std::fs::read(&index).expect("paged snapshot written");
    assert_eq!(&image[0..4], b"DXTS", "magic");
    assert_eq!(
        u32::from_le_bytes([image[4], image[5], image[6], image[7]]),
        2,
        "paged snapshots carry format version 2"
    );
    let cold = std::fs::read_to_string(&paths.output).expect("output written");

    // Warm start through the buffer pool under a deliberately small
    // budget (two 4 KiB frames) — must still be bit-identical.
    let warm_path = paths.dir.join("warm-paged.xml");
    let load_out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--index-load", index.to_str().unwrap()])
        .args(["--index-paged", "--mem-budget", "8192"])
        .args(["--output", warm_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        load_out.status.success(),
        "{}",
        String::from_utf8_lossy(&load_out.stderr)
    );
    assert!(String::from_utf8_lossy(&load_out.stderr).contains("pool budget"));
    let warm = std::fs::read_to_string(&warm_path).expect("warm output written");
    assert_eq!(cold, warm, "paged warm start must be bit-identical");

    // Version compatibility: the flat loader reads v2 files too.
    let compat_path = paths.dir.join("warm-compat.xml");
    let compat_out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--mapping", paths.mapping.to_str().unwrap()])
        .args(["--index-load", index.to_str().unwrap()])
        .args(["--output", compat_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        compat_out.status.success(),
        "{}",
        String::from_utf8_lossy(&compat_out.stderr)
    );
    let compat = std::fs::read_to_string(&compat_path).expect("compat output written");
    assert_eq!(cold, compat, "v2 file via plain --index-load diverged");
    let _ = std::fs::remove_dir_all(&paths.dir);
}

#[test]
fn paged_flags_are_validated() {
    let paths = write_sample();
    // --index-paged without a snapshot flag is meaningless.
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .arg("--index-paged")
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr)
        .contains("--index-paged needs --index-save or --index-load"));

    // --mem-budget only modifies --index-paged.
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--index-save", "a.index", "--mem-budget", "8192"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--mem-budget only applies to --index-paged")
    );

    // Non-numeric budgets are named, not panicked over.
    let out = dogmatix()
        .arg(&paths.input)
        .args(["--type", "MOVIE"])
        .args(["--index-save", "a.index", "--index-paged"])
        .args(["--mem-budget", "lots"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--mem-budget must be a byte count"));
    let _ = std::fs::remove_dir_all(&paths.dir);
}
