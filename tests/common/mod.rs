//! Helpers shared by the integration suites (`properties.rs`,
//! `incremental.rs`, `sharding.rs`): the `PROPTEST_CASES` override and
//! the miniature record corpus the differential properties run on.
//!
//! Each test binary compiles its own copy, so not every binary uses
//! every item.
#![allow(dead_code)]

use dogmatix_repro::xml::Document;
use proptest::prelude::*;

/// Property-case count: `PROPTEST_CASES` env override, else `default`
/// (ci.sh sets 128 for the differential suites; local runs default
/// lower).
pub fn cases(default: u32) -> u32 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// A miniature record: (title, year, names).
#[derive(Debug, Clone)]
pub struct MiniRecord {
    pub title: String,
    pub year: u16,
    pub names: Vec<String>,
}

/// Strategy for one random [`MiniRecord`].
pub fn record_strategy() -> impl Strategy<Value = MiniRecord> {
    (
        proptest::string::string_regex("[a-z]{2,10}( [a-z]{2,8})?").unwrap(),
        1960u16..2005,
        proptest::collection::vec(
            proptest::string::string_regex("[A-Z][a-z]{2,7}").unwrap(),
            0..3,
        ),
    )
        .prop_map(|(title, year, names)| MiniRecord { title, year, names })
}

/// Renders records as the `/db/item` corpus the suites detect over.
pub fn build_doc(records: &[MiniRecord]) -> Document {
    let mut doc = Document::with_root("db");
    let root = doc.root_element().unwrap();
    for r in records {
        let item = doc.add_element(root, "item");
        doc.add_text_element(item, "title", &r.title);
        doc.add_text_element(item, "year", &r.year.to_string());
        for n in &r.names {
            let person = doc.add_element(item, "person");
            doc.add_text_element(person, "name", n);
        }
    }
    doc
}
