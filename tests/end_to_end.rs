//! Cross-crate integration tests: generated corpora through the full
//! pipeline (datagen → xml → core → eval).

use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::{Dogmatix, DogmatixConfig};
use dogmatix_repro::datagen::datasets::{dataset1_sized, dataset2_sized};
use dogmatix_repro::eval::metrics::pair_metrics;
use dogmatix_repro::eval::setup;

#[test]
fn dataset1_detection_is_effective_at_k6() {
    let (doc, gold) = dataset1_sized(21, 60);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    let dx = Dogmatix::new(setup::paper_config(heuristic), setup::cd_mapping());
    let result = dx.run(&doc, &schema, setup::CD_TYPE).unwrap();
    let m = pair_metrics(&result.duplicate_pairs, &gold);
    assert!(m.recall() > 0.85, "recall {}", m.recall());
    assert!(m.precision() > 0.7, "precision {}", m.precision());
}

#[test]
fn without_filter_detects_a_superset_of_pairs() {
    let (doc, _) = dataset1_sized(3, 40);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    let with = Dogmatix::new(setup::paper_config(heuristic.clone()), setup::cd_mapping())
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    let without = Dogmatix::new(
        DogmatixConfig {
            use_filter: false,
            ..setup::paper_config(heuristic)
        },
        setup::cd_mapping(),
    )
    .run(&doc, &schema, setup::CD_TYPE)
    .unwrap();
    // The filter can only remove pairs, never invent them.
    for pair in &with.duplicate_pairs {
        assert!(
            without.duplicate_pairs.contains(pair),
            "pair {pair:?} appears only with the filter"
        );
    }
    assert!(without.stats.pairs_compared >= with.stats.pairs_compared);
}

#[test]
fn parallel_equals_sequential_on_dataset1() {
    let (doc, _) = dataset1_sized(9, 50);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(4), 1);
    let run_with = |threads: usize| {
        Dogmatix::new(
            DogmatixConfig {
                threads,
                ..setup::paper_config(heuristic.clone())
            },
            setup::cd_mapping(),
        )
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap()
    };
    let seq = run_with(1);
    let par = run_with(4);
    assert_eq!(seq.duplicate_pairs, par.duplicate_pairs);
    assert_eq!(seq.clusters, par.clusters);
    assert_eq!(seq.pruned, par.pruned);
}

#[test]
fn detection_is_deterministic() {
    let (doc, _) = dataset1_sized(5, 40);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(5), 2);
    let run = || {
        Dogmatix::new(setup::paper_config(heuristic.clone()), setup::cd_mapping())
            .run(&doc, &schema, setup::CD_TYPE)
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.duplicate_pairs, b.duplicate_pairs);
    assert_eq!(a.f_values, b.f_values);
}

#[test]
fn detected_pairs_only_involve_unpruned_candidates() {
    let (doc, _) = dataset1_sized(31, 60);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    let result = Dogmatix::new(setup::paper_config(heuristic), setup::cd_mapping())
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    for (i, j, sim) in &result.duplicate_pairs {
        assert!(!result.pruned[*i] && !result.pruned[*j]);
        assert!(*sim > setup::THETA_CAND);
    }
}

#[test]
fn clusters_are_the_transitive_closure_of_pairs() {
    let (doc, _) = dataset1_sized(13, 60);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(3), 1);
    let result = Dogmatix::new(setup::paper_config(heuristic), setup::cd_mapping())
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    // Every detected pair lands in the same cluster.
    let cluster_of = |x: usize| result.clusters.iter().position(|c| c.contains(&x));
    for (i, j, _) in &result.duplicate_pairs {
        assert_eq!(cluster_of(*i), cluster_of(*j));
        assert!(cluster_of(*i).is_some());
    }
    // Every cluster member of size-2 clusters appears in some pair.
    for cluster in &result.clusters {
        assert!(cluster.len() >= 2);
        for &m in cluster {
            assert!(result
                .duplicate_pairs
                .iter()
                .any(|(i, j, _)| *i == m || *j == m));
        }
    }
}

#[test]
fn dataset2_cross_source_duplicates_are_found() {
    let (doc, gold) = dataset2_sized(19, 50);
    let schema = setup::movie_schema(&doc);
    let heuristic = table4_heuristic(HeuristicExpr::r_distant_descendants(2), 2);
    let result = Dogmatix::new(setup::paper_config(heuristic), setup::movie_mapping())
        .run(&doc, &schema, setup::MOVIE_TYPE)
        .unwrap();
    let m = pair_metrics(&result.duplicate_pairs, &gold);
    assert!(m.recall() > 0.3, "recall {}", m.recall());
    assert!(m.precision() > 0.5, "precision {}", m.precision());
    // At least one detected pair crosses the two sources.
    let n = gold.len() / 2;
    assert!(
        result
            .duplicate_pairs
            .iter()
            .any(|(i, j, _)| (*i < n) != (*j < n)),
        "expected a cross-source duplicate"
    );
}

#[test]
fn output_document_roundtrips_through_the_parser() {
    let (doc, _) = dataset1_sized(2, 30);
    let schema = setup::cd_schema();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    let result = Dogmatix::new(setup::paper_config(heuristic), setup::cd_mapping())
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    let out = result.to_xml(&doc);
    let reparsed = dogmatix_repro::xml::Document::parse(&out.to_xml()).unwrap();
    assert_eq!(
        reparsed.select("/duplicates/dupcluster").unwrap().len(),
        result.clusters.len()
    );
}
