//! Equivalence suite: the builder API must reproduce the exact
//! `DetectionResult` of the legacy `DogmatixConfig` path — same pairs,
//! same similarities, same filter values, same clusters, same stats —
//! on both evaluation corpora and at every thread count, with and
//! without the object filter, through `run` and through a reused
//! `DetectionSession`.

use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::{DetectionResult, DetectionSession, Dogmatix, DogmatixConfig};
use dogmatix_repro::core::Mapping;
use dogmatix_repro::datagen::datasets::{dataset1_sized, dataset2_sized};
use dogmatix_repro::eval::setup;
use dogmatix_repro::xml::{Document, Schema};

const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 0];

/// Runs the legacy constructor and the builder (via `run`, via a fresh
/// session, and via a reused session) and asserts all four results are
/// identical.
fn assert_equivalent(
    doc: &Document,
    schema: &Schema,
    mapping: &Mapping,
    heuristic: &HeuristicExpr,
    rw_type: &str,
    use_filter: bool,
    threads: usize,
) -> DetectionResult {
    let config = DogmatixConfig {
        theta_tuple: setup::THETA_TUPLE,
        theta_cand: setup::THETA_CAND,
        heuristic: heuristic.clone(),
        use_filter,
        threads,
    };
    let legacy = Dogmatix::new(config, mapping.clone())
        .run(doc, schema, rw_type)
        .expect("legacy path runs");

    let mut builder = Dogmatix::builder()
        .mapping(mapping.clone())
        .heuristic(heuristic.clone())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .threads(threads);
    if !use_filter {
        builder = builder.no_filter();
    }
    let built = builder.build();

    let via_run = built.run(doc, schema, rw_type).expect("builder run");
    assert_eq!(legacy, via_run, "builder.run diverges (threads={threads})");

    let session = DetectionSession::new(doc, schema, mapping, rw_type).expect("session opens");
    let via_session = built.detect(&session).expect("session detect");
    assert_eq!(
        legacy, via_session,
        "session detect diverges (threads={threads})"
    );
    let via_cached_session = built.detect(&session).expect("cached session detect");
    assert_eq!(
        legacy, via_cached_session,
        "cached-OD rerun diverges (threads={threads})"
    );
    assert_eq!(session.cached_od_sets(), 1, "one selection, one OD set");

    legacy
}

#[test]
fn cd_dataset_equivalence_all_thread_counts() {
    let (doc, _) = dataset1_sized(21, 60);
    let schema = setup::cd_schema();
    let mapping = setup::cd_mapping();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    let mut results = Vec::new();
    for threads in THREAD_COUNTS {
        results.push(assert_equivalent(
            &doc,
            &schema,
            &mapping,
            &heuristic,
            setup::CD_TYPE,
            true,
            threads,
        ));
    }
    // Thread count must not change the outcome either.
    for r in &results[1..] {
        assert_eq!(results[0], *r, "thread count changed the result");
    }
    assert!(
        !results[0].duplicate_pairs.is_empty(),
        "the corpus contains detectable duplicates"
    );
}

#[test]
fn cd_dataset_equivalence_without_filter() {
    let (doc, _) = dataset1_sized(3, 40);
    let schema = setup::cd_schema();
    let mapping = setup::cd_mapping();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    for threads in [1, 4] {
        assert_equivalent(
            &doc,
            &schema,
            &mapping,
            &heuristic,
            setup::CD_TYPE,
            false,
            threads,
        );
    }
}

#[test]
fn movie_dataset_equivalence_all_thread_counts() {
    let (doc, _) = dataset2_sized(7, 40);
    let schema = setup::movie_schema(&doc);
    let mapping = setup::movie_mapping();
    let heuristic = table4_heuristic(HeuristicExpr::r_distant_descendants(2), 2);
    let mut results = Vec::new();
    for threads in THREAD_COUNTS {
        results.push(assert_equivalent(
            &doc,
            &schema,
            &mapping,
            &heuristic,
            setup::MOVIE_TYPE,
            true,
            threads,
        ));
    }
    for r in &results[1..] {
        assert_eq!(results[0], *r, "thread count changed the result");
    }
    assert!(!results[0].duplicate_pairs.is_empty());
}

#[test]
fn explicit_default_stages_equal_derived_defaults() {
    // Spelling out the paper's default stages explicitly must be the
    // same as letting the builder derive them from the thresholds.
    use dogmatix_repro::core::classify::ThresholdClassifier;
    use dogmatix_repro::core::cluster::TransitiveClosure;
    use dogmatix_repro::core::filter::ObjectFilter;
    use dogmatix_repro::core::sim::SoftIdfMeasure;

    let (doc, _) = dataset1_sized(11, 40);
    let schema = setup::cd_schema();
    let mapping = setup::cd_mapping();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);

    let derived = Dogmatix::builder()
        .mapping(mapping.clone())
        .heuristic(heuristic.clone())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    let explicit = Dogmatix::builder()
        .mapping(mapping)
        .selector(heuristic)
        .filter(ObjectFilter::new(setup::THETA_TUPLE, setup::THETA_CAND))
        .measure(SoftIdfMeasure::new(setup::THETA_TUPLE))
        .classifier(ThresholdClassifier::new(setup::THETA_CAND))
        .clusterer(TransitiveClosure)
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    assert_eq!(derived, explicit);
}

#[test]
fn sweep_over_one_session_matches_independent_runs() {
    // The OD cache must be purely an optimisation: a sweep over one
    // session equals fresh runs point by point.
    let (doc, _) = dataset1_sized(5, 40);
    let schema = setup::cd_schema();
    let mapping = setup::cd_mapping();
    let session = DetectionSession::new(&doc, &schema, &mapping, setup::CD_TYPE).unwrap();
    for exp in [1, 2, 8] {
        for k in [3, 6] {
            let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(k), exp);
            let dx = setup::paper_detector(heuristic, mapping.clone());
            let swept = dx.detect(&session).unwrap();
            let fresh = dx.run(&doc, &schema, setup::CD_TYPE).unwrap();
            assert_eq!(swept, fresh, "exp={exp} k={k}");
        }
    }
    assert!(
        session.cached_od_sets() <= 6,
        "at most one OD set per distinct selection"
    );
}

/// The snapshot-backend path: a run that persists its term index and a
/// run warm-started from that snapshot must both equal the legacy
/// in-memory result exactly — on both corpora, sequential and sharded.
#[test]
fn snapshot_warm_start_equivalence_on_both_corpora() {
    use dogmatix_repro::core::backend::SnapshotBackend;

    let cd = {
        let (doc, _) = dataset1_sized(21, 60);
        (
            doc,
            setup::cd_schema(),
            setup::cd_mapping(),
            table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1),
            setup::CD_TYPE,
        )
    };
    let movie = {
        let (doc, _) = dataset2_sized(7, 40);
        let schema = setup::movie_schema(&doc);
        (
            doc,
            schema,
            setup::movie_mapping(),
            table4_heuristic(HeuristicExpr::r_distant_descendants(2), 2),
            setup::MOVIE_TYPE,
        )
    };
    for (tag, (doc, schema, mapping, heuristic, rw_type)) in [("cd", cd), ("movie", movie)] {
        let path = std::env::temp_dir().join(format!(
            "dogmatix-equivalence-{}-{tag}.index",
            std::process::id()
        ));
        let build = |backend: Option<SnapshotBackend>, shards: Option<usize>| {
            let mut b = Dogmatix::builder()
                .mapping(mapping.clone())
                .heuristic(heuristic.clone())
                .theta_tuple(setup::THETA_TUPLE)
                .theta_cand(setup::THETA_CAND);
            if let Some(backend) = backend {
                b = b.index_backend(backend);
            }
            if let Some(shards) = shards {
                b = b.sharded(shards);
            }
            b.build().run(&doc, &schema, rw_type).expect("run succeeds")
        };
        let reference = build(None, None);
        assert!(
            !reference.duplicate_pairs.is_empty(),
            "{tag} has duplicates"
        );
        let saved = build(Some(SnapshotBackend::save(&path)), None);
        assert_eq!(reference, saved, "{tag}: save path diverged");
        let warm = build(Some(SnapshotBackend::load(&path)), None);
        assert_eq!(reference, warm, "{tag}: warm start diverged");
        for shards in [2usize, 0] {
            let sharded_warm = build(Some(SnapshotBackend::load(&path)), Some(shards));
            assert_eq!(
                reference, sharded_warm,
                "{tag}: sharded ({shards}) warm start diverged"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

/// Stage registry: every public stage implementation must run through
/// the pipeline in this file at least once — dxlint's stage-registered
/// rule cross-checks each `impl <StageTrait> for <Type>` in the crates
/// against the type names appearing here. Beyond mere construction,
/// each stage is held to a semantic contract: `NoFilter` reproduces the
/// exhaustive result, every blocking filter finds a subset of the
/// exhaustive duplicates, and `DualThreshold`'s duplicates equal a
/// plain `ThresholdClassifier` at the same upper threshold.
#[test]
fn every_public_stage_impl_is_exercised() {
    use dogmatix_repro::core::baseline::{
        DelphiMeasure, OverlapMeasure, TreeEditMeasure, UnweightedMeasure, VectorSpaceMeasure,
    };
    use dogmatix_repro::core::classify::{DualThreshold, ThresholdClassifier};
    use dogmatix_repro::core::filter::{MinHashLshBlocking, NoFilter, QGramBlocking};
    use dogmatix_repro::core::neighborhood::{SortedNeighborhoodFilter, TopKBlocking};
    use dogmatix_repro::core::stage::{ManualSelection, SimilarityMeasure};
    use std::collections::BTreeSet;
    use std::sync::Arc;

    let (doc, _) = dataset1_sized(13, 40);
    let schema = setup::cd_schema();
    let mapping = setup::cd_mapping();
    let heuristic = table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1);
    let base = || {
        Dogmatix::builder()
            .mapping(mapping.clone())
            .heuristic(heuristic.clone())
            .theta_tuple(setup::THETA_TUPLE)
            .theta_cand(setup::THETA_CAND)
    };
    let pairs = |r: &DetectionResult| -> BTreeSet<(usize, usize)> {
        r.duplicate_pairs.iter().map(|&(i, j, _)| (i, j)).collect()
    };

    let exhaustive = base()
        .no_filter()
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    let truth = pairs(&exhaustive);
    assert!(!truth.is_empty(), "the corpus contains duplicates");

    // Comparison filters.
    let no_filter = base()
        .filter(NoFilter)
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    assert_eq!(exhaustive, no_filter, "NoFilter must equal no_filter()");
    let blockers: [(&str, Dogmatix); 4] = [
        (
            "sorted-neighborhood",
            base().filter(SortedNeighborhoodFilter::new(10)).build(),
        ),
        ("top-k", base().filter(TopKBlocking::new(8)).build()),
        ("q-gram", base().filter(QGramBlocking::new(3, 0.2)).build()),
        (
            "minhash-lsh",
            base().filter(MinHashLshBlocking::new(24, 2)).build(),
        ),
    ];
    for (name, dx) in blockers {
        let result = dx.run(&doc, &schema, setup::CD_TYPE).unwrap();
        assert!(
            pairs(&result).is_subset(&truth),
            "{name} reported a pair the exhaustive run rejected"
        );
    }

    // Baseline similarity measures (the paper's shoot-out competitors).
    let measures: [(&str, Arc<dyn SimilarityMeasure>); 5] = [
        ("overlap", Arc::new(OverlapMeasure)),
        (
            "unweighted",
            Arc::new(UnweightedMeasure::new(setup::THETA_TUPLE)),
        ),
        ("delphi", Arc::new(DelphiMeasure::new(setup::THETA_TUPLE))),
        ("vector-space", Arc::new(VectorSpaceMeasure)),
        ("tree-edit", Arc::new(TreeEditMeasure)),
    ];
    for (name, measure) in measures {
        let result = base()
            .no_filter()
            .measure_arc(measure)
            .build()
            .run(&doc, &schema, setup::CD_TYPE)
            .unwrap();
        assert!(result.stats.pairs_compared > 0, "{name} compared no pairs");
    }

    // Classifiers: DualThreshold's definite duplicates coincide with a
    // plain threshold at theta_dup.
    let dual = base()
        .no_filter()
        .classifier(DualThreshold::new(setup::THETA_CAND, 0.2).unwrap())
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    let plain = base()
        .no_filter()
        .classifier(ThresholdClassifier::new(setup::THETA_CAND))
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    assert_eq!(pairs(&dual), pairs(&plain));

    // Manual description selection bypasses the heuristic algebra.
    let manual = base()
        .selector(ManualSelection::new().with(
            dogmatix_repro::datagen::cd::CD_CANDIDATE_PATH,
            ["/discs/disc/artist", "/discs/disc/tracks/title"],
        ))
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .unwrap();
    assert!(manual.stats.pairs_compared > 0);
}

/// The edit-distance kernels are exact, so `--edit-kernel scalar` and
/// `--edit-kernel bitpar` must produce bit-identical `DetectionResult`s
/// — same pairs, same similarity values — on both corpora, sequential
/// and sharded, whether selected through the builder or through an
/// explicit `SoftIdfMeasure::with_kernel` stage.
#[test]
fn edit_kernel_equivalence_on_both_corpora() {
    use dogmatix_repro::core::sim::{EditKernelChoice, SoftIdfMeasure};

    let cd = {
        let (doc, _) = dataset1_sized(21, 60);
        (
            doc,
            setup::cd_schema(),
            setup::cd_mapping(),
            table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1),
            setup::CD_TYPE,
        )
    };
    let movie = {
        let (doc, _) = dataset2_sized(7, 40);
        let schema = setup::movie_schema(&doc);
        (
            doc,
            schema,
            setup::movie_mapping(),
            table4_heuristic(HeuristicExpr::r_distant_descendants(2), 2),
            setup::MOVIE_TYPE,
        )
    };
    for (tag, (doc, schema, mapping, heuristic, rw_type)) in [("cd", cd), ("movie", movie)] {
        let build = |choice: EditKernelChoice, shards: Option<usize>| {
            let mut b = Dogmatix::builder()
                .mapping(mapping.clone())
                .heuristic(heuristic.clone())
                .theta_tuple(setup::THETA_TUPLE)
                .theta_cand(setup::THETA_CAND)
                .edit_kernel(choice);
            if let Some(shards) = shards {
                b = b.sharded(shards);
            }
            b.build().run(&doc, &schema, rw_type).expect("run succeeds")
        };
        let reference = build(EditKernelChoice::BitParallel, None);
        assert!(
            !reference.duplicate_pairs.is_empty(),
            "{tag} has duplicates"
        );
        for choice in [EditKernelChoice::Scalar, EditKernelChoice::BitParallel] {
            for shards in [None, Some(2usize), Some(0)] {
                let result = build(choice, shards);
                assert_eq!(
                    reference, result,
                    "{tag}: kernel {choice} (shards {shards:?}) diverged"
                );
            }
            // The explicit-measure spelling of the same selection.
            let explicit = Dogmatix::builder()
                .mapping(mapping.clone())
                .heuristic(heuristic.clone())
                .theta_tuple(setup::THETA_TUPLE)
                .theta_cand(setup::THETA_CAND)
                .measure(SoftIdfMeasure::with_kernel(setup::THETA_TUPLE, choice))
                .build()
                .run(&doc, &schema, rw_type)
                .expect("run succeeds");
            assert_eq!(reference, explicit, "{tag}: explicit {choice} diverged");
        }
    }
}

/// The paged (v2) backend is an out-of-core drop-in: on both corpora,
/// sequential and sharded, its results are bit-identical to the
/// in-memory build while its buffer pool provably stays under a budget
/// smaller than the snapshot it serves.
#[test]
fn paged_backend_equivalence_on_both_corpora() {
    use dogmatix_repro::core::backend::paged::PagedBackend;
    use std::sync::Arc;

    let cd = {
        let (doc, _) = dataset1_sized(21, 60);
        (
            doc,
            setup::cd_schema(),
            setup::cd_mapping(),
            table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1),
            setup::CD_TYPE,
        )
    };
    let movie = {
        let (doc, _) = dataset2_sized(7, 40);
        let schema = setup::movie_schema(&doc);
        (
            doc,
            schema,
            setup::movie_mapping(),
            table4_heuristic(HeuristicExpr::r_distant_descendants(2), 2),
            setup::MOVIE_TYPE,
        )
    };
    const BUDGET: usize = 8 * 1024; // sixteen 512 B frames
    for (tag, (doc, schema, mapping, heuristic, rw_type)) in [("cd", cd), ("movie", movie)] {
        let path = std::env::temp_dir().join(format!(
            "dogmatix-equivalence-paged-{}-{tag}.dxts2",
            std::process::id()
        ));
        let build = |backend: Option<Arc<PagedBackend>>, shards: Option<usize>| {
            let mut b = Dogmatix::builder()
                .mapping(mapping.clone())
                .heuristic(heuristic.clone())
                .theta_tuple(setup::THETA_TUPLE)
                .theta_cand(setup::THETA_CAND);
            if let Some(backend) = backend {
                b = b.index_backend(backend);
            }
            if let Some(shards) = shards {
                b = b.sharded(shards);
            }
            b.build().run(&doc, &schema, rw_type).expect("run succeeds")
        };
        let reference = build(None, None);
        let saved = build(
            Some(Arc::new(
                PagedBackend::save(&path, BUDGET).with_page_size(512),
            )),
            None,
        );
        assert_eq!(reference, saved, "{tag}: paged save path diverged");
        let snapshot_len = std::fs::metadata(&path).expect("snapshot written").len();
        assert!(
            snapshot_len as usize > BUDGET,
            "{tag}: snapshot ({snapshot_len} B) must exceed the {BUDGET} B budget \
             for the test to exercise eviction"
        );
        for shards in [None, Some(2usize), Some(0)] {
            let backend = Arc::new(PagedBackend::open(&path, BUDGET));
            let warm = build(Some(backend.clone()), shards);
            assert_eq!(
                reference, warm,
                "{tag}: paged warm start (shards {shards:?}) diverged"
            );
            let stats = backend.last_stats().expect("load records pool stats");
            assert!(
                stats.peak_resident_bytes <= BUDGET,
                "{tag}: pool peaked at {} B over the {BUDGET} B budget",
                stats.peak_resident_bytes
            );
            assert!(
                stats.evictions > 0,
                "{tag}: a sub-snapshot budget must force evictions"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}
