//! Differential test suite for streaming ingest: for ANY corpus and ANY
//! delta sequence, `Dogmatix::detect_delta` over an `IncrementalSession`
//! must produce exactly the result of rebuilding a fresh session over
//! the final document state and running batch detection — same
//! candidates, same ODs, same filter values, same pairs (bit-identical
//! similarities), same clusters — at every thread count.
//!
//! The number of property cases honours the `PROPTEST_CASES` environment
//! override (ci.sh sets it to 128; local runs default lower).

mod common;

use common::{build_doc, cases, record_strategy, MiniRecord};
use dogmatix_repro::core::incremental::{DocumentDelta, IncrementalSession};
use dogmatix_repro::core::pipeline::{DetectionResult, DetectionSession, Dogmatix};
use dogmatix_repro::core::wal::{FsyncPolicy, Wal};
use dogmatix_repro::datagen::datasets::{dataset1_sized, dataset2_sized};
use dogmatix_repro::eval::setup;
use dogmatix_repro::xml::{Document, Schema};
use proptest::prelude::*;
use std::collections::BTreeSet;

const THREAD_COUNTS: [usize; 3] = [1, 2, 0];

// ---- corpus ----------------------------------------------------------

fn corpus_strategy() -> impl Strategy<Value = Vec<MiniRecord>> {
    proptest::collection::vec(record_strategy(), 3..9)
}

fn record_xml(r: &MiniRecord) -> String {
    let mut xml = format!("<item><title>{}</title><year>{}</year>", r.title, r.year);
    for n in &r.names {
        xml.push_str(&format!("<person><name>{n}</name></person>"));
    }
    xml.push_str("</item>");
    xml
}

// ---- delta specifications --------------------------------------------

/// Abstract delta op: slots are resolved modulo the live candidate count
/// at application time, so any generated sequence stays applicable.
#[derive(Debug, Clone)]
enum OpSpec {
    UpdateTitle {
        slot: usize,
        value: String,
    },
    /// Duplicate-creating: copy another candidate's title (and year).
    CopyFrom {
        from: usize,
        to: usize,
    },
    /// No-op: rewrite the title with its current value.
    NoOpTitle {
        slot: usize,
    },
    UpdateYear {
        slot: usize,
        year: u16,
    },
    ClearYear {
        slot: usize,
    },
    InsertFresh {
        record: MiniRecord,
    },
    /// Duplicate-creating: insert a clone of an existing candidate.
    InsertClone {
        slot: usize,
    },
    Remove {
        slot: usize,
    },
    AddPerson {
        slot: usize,
        name: String,
    },
    RemovePerson {
        slot: usize,
    },
}

fn op_strategy() -> impl Strategy<Value = OpSpec> {
    let title = proptest::string::string_regex("[a-z]{2,10}( [a-z]{2,8})?").unwrap();
    let name = proptest::string::string_regex("[A-Z][a-z]{2,7}").unwrap();
    prop_oneof![
        (0usize..16, title).prop_map(|(slot, value)| OpSpec::UpdateTitle { slot, value }),
        (0usize..16, 0usize..16).prop_map(|(from, to)| OpSpec::CopyFrom { from, to }),
        (0usize..16).prop_map(|slot| OpSpec::NoOpTitle { slot }),
        (0usize..16, 1960u16..2005).prop_map(|(slot, year)| OpSpec::UpdateYear { slot, year }),
        (0usize..16).prop_map(|slot| OpSpec::ClearYear { slot }),
        record_strategy().prop_map(|record| OpSpec::InsertFresh { record }),
        (0usize..16).prop_map(|slot| OpSpec::InsertClone { slot }),
        (0usize..16).prop_map(|slot| OpSpec::Remove { slot }),
        (0usize..16, name).prop_map(|(slot, name)| OpSpec::AddPerson { slot, name }),
        (0usize..16).prop_map(|slot| OpSpec::RemovePerson { slot }),
    ]
}

/// Resolves an abstract op against the session's current state. `None`
/// skips ops that would leave the corpus degenerate (fewer than three
/// candidates) or address data that does not exist.
fn concretize(op: &OpSpec, s: &IncrementalSession) -> Option<DocumentDelta> {
    let n = s.candidates().len();
    if n == 0 {
        return None;
    }
    let doc = s.doc();
    let title_of = |idx: usize| {
        let cand = s.candidates().nodes[idx];
        let t = doc.select_from(cand, "title").ok()?.first().copied()?;
        doc.direct_text(t)
    };
    match op {
        OpSpec::UpdateTitle { slot, value } => Some(DocumentDelta::UpdateText {
            index: slot % n,
            path: "title".into(),
            occurrence: 0,
            value: value.clone(),
        }),
        OpSpec::CopyFrom { from, to } => {
            let (from, to) = (from % n, to % n);
            if from == to {
                return None;
            }
            Some(DocumentDelta::UpdateText {
                index: to,
                path: "title".into(),
                occurrence: 0,
                value: title_of(from)?,
            })
        }
        OpSpec::NoOpTitle { slot } => Some(DocumentDelta::UpdateText {
            index: slot % n,
            path: "title".into(),
            occurrence: 0,
            value: title_of(slot % n)?,
        }),
        OpSpec::UpdateYear { slot, year } => Some(DocumentDelta::UpdateText {
            index: slot % n,
            path: "year".into(),
            occurrence: 0,
            value: year.to_string(),
        }),
        OpSpec::ClearYear { slot } => Some(DocumentDelta::UpdateText {
            index: slot % n,
            path: "year".into(),
            occurrence: 0,
            value: String::new(),
        }),
        OpSpec::InsertFresh { record } => Some(DocumentDelta::InsertXml {
            parent_path: "/db".into(),
            xml: record_xml(record),
        }),
        OpSpec::InsertClone { slot } => {
            let cand = s.candidates().nodes[slot % n];
            // Re-render the candidate's subtree as a fragment.
            let title = title_of(slot % n)?;
            let year = doc
                .select_from(cand, "year")
                .ok()?
                .first()
                .and_then(|y| doc.direct_text(*y))
                .unwrap_or_default();
            let names: Vec<String> = doc
                .select_from(cand, "person/name")
                .ok()?
                .iter()
                .filter_map(|nm| doc.direct_text(*nm))
                .collect();
            Some(DocumentDelta::InsertXml {
                parent_path: "/db".into(),
                xml: record_xml(&MiniRecord {
                    title,
                    year: year.parse().unwrap_or(2000),
                    names,
                }),
            })
        }
        OpSpec::Remove { slot } => {
            if n <= 3 {
                return None; // keep the corpus non-degenerate
            }
            Some(DocumentDelta::RemoveObject { index: slot % n })
        }
        OpSpec::AddPerson { slot, name } => Some(DocumentDelta::InsertUnder {
            index: slot % n,
            path: ".".into(),
            occurrence: 0,
            xml: format!("<person><name>{name}</name></person>"),
        }),
        OpSpec::RemovePerson { slot } => {
            let idx = slot % n;
            let cand = s.candidates().nodes[idx];
            if doc.select_from(cand, "person").ok()?.is_empty() {
                return None;
            }
            Some(DocumentDelta::RemoveElement {
                index: idx,
                path: "person".into(),
                occurrence: 0,
            })
        }
    }
}

// ---- the differential check ------------------------------------------

fn detector(theta_tuple: f64, use_filter: bool, threads: usize) -> Dogmatix {
    let builder = Dogmatix::builder()
        .add_type("ITEM", ["/db/item"])
        .theta_tuple(theta_tuple)
        .threads(threads);
    if use_filter {
        builder.build()
    } else {
        builder.no_filter().build()
    }
}

/// Batch detection rebuilt from scratch over the session's final state.
fn batch_rebuild(dx: &Dogmatix, s: &IncrementalSession) -> DetectionResult {
    let doc = s.doc().clone();
    let schema = Schema::infer(&doc).expect("corpus stays non-empty");
    let session =
        DetectionSession::new(&doc, &schema, dx.mapping(), s.rw_type()).expect("session opens");
    dx.detect(&session).expect("batch detect runs")
}

/// Full outcome equality; `stats.pairs_compared` is exempt (the whole
/// point of the incremental path is to compare fewer pairs).
fn assert_outcome_eq(inc: &DetectionResult, full: &DetectionResult, context: &str) {
    assert_eq!(inc.candidates, full.candidates, "candidates: {context}");
    assert_eq!(*inc.ods, *full.ods, "object descriptions: {context}");
    assert_eq!(inc.f_values, full.f_values, "filter values: {context}");
    assert_eq!(inc.pruned, full.pruned, "pruned flags: {context}");
    assert_eq!(
        inc.duplicate_pairs, full.duplicate_pairs,
        "duplicate pairs: {context}"
    );
    assert_eq!(
        inc.possible_pairs, full.possible_pairs,
        "possible pairs: {context}"
    );
    assert_eq!(inc.clusters, full.clusters, "clusters: {context}");
    assert_eq!(inc.stats.candidates, full.stats.candidates, "{context}");
    assert_eq!(
        inc.stats.pruned_by_filter, full.stats.pruned_by_filter,
        "{context}"
    );
}

/// Clusters as sets of absolute element paths — the index-free view that
/// must also survive a serialise-and-reparse round trip.
fn cluster_paths(doc: &Document, result: &DetectionResult) -> BTreeSet<BTreeSet<String>> {
    result
        .clusters
        .iter()
        .map(|c| {
            c.iter()
                .map(|&i| doc.absolute_path(result.candidates[i]))
                .collect()
        })
        .collect()
}

/// Replays `ops` over the corpus at one thread count, checking the
/// differential property after every delta. Returns the final clusters
/// (as path sets) for cross-thread comparison.
fn run_scenario(
    records: &[MiniRecord],
    ops: &[OpSpec],
    theta_tuple: f64,
    use_filter: bool,
    threads: usize,
) -> BTreeSet<BTreeSet<String>> {
    let dx = detector(theta_tuple, use_filter, threads);
    let mut s = dx
        .incremental_session_inferred(build_doc(records), "ITEM")
        .expect("session opens");
    let initial = dx.detect_delta(&mut s, &[]).expect("initial run");
    assert_outcome_eq(&initial, &batch_rebuild(&dx, &s), "initial run");

    let mut last = initial;
    for (step, op) in ops.iter().enumerate() {
        let Some(delta) = concretize(op, &s) else {
            continue;
        };
        let context = format!("step {step} {op:?} (threads={threads})");
        last = dx
            .detect_delta(&mut s, std::slice::from_ref(&delta))
            .unwrap_or_else(|e| panic!("delta failed at {context}: {e}"));
        let full = batch_rebuild(&dx, &s);
        assert_outcome_eq(&last, &full, &context);
    }

    // The final state must also survive serialise → reparse → batch
    // (index-free cluster comparison, since arena ids differ).
    let reparsed = Document::parse(&s.doc().to_xml()).expect("serialised state reparses");
    let schema = Schema::infer(&reparsed).expect("non-empty");
    let session = DetectionSession::new(&reparsed, &schema, dx.mapping(), "ITEM").unwrap();
    let re = dx.detect(&session).expect("reparsed batch runs");
    assert_eq!(
        cluster_paths(s.doc(), &last),
        cluster_paths(&reparsed, &re),
        "clusters diverge after reparse (threads={threads})"
    );
    cluster_paths(s.doc(), &last)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// The centrepiece: random corpus, random delta sequence, incremental
    /// == batch after every single delta, across thread counts 1/2/0.
    #[test]
    fn incremental_equals_batch_for_any_delta_sequence(
        records in corpus_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..6),
        theta in 0.10f64..0.6,
        use_filter in (0usize..2).prop_map(|v| v == 1),
    ) {
        let mut final_clusters = Vec::new();
        for threads in THREAD_COUNTS {
            final_clusters.push(run_scenario(&records, &ops, theta, use_filter, threads));
        }
        prop_assert_eq!(&final_clusters[0], &final_clusters[1], "threads 1 vs 2");
        prop_assert_eq!(&final_clusters[0], &final_clusters[2], "threads 1 vs 0");
    }
}

// ---- directed cases ---------------------------------------------------

/// The acceptance criterion on the CD corpus: replaying deltas must cost
/// strictly fewer pair comparisons than re-detecting from scratch, while
/// producing identical results (fixed XSD-backed schema here).
#[test]
fn cd_delta_replay_compares_fewer_pairs_than_full_redetection() {
    let (doc, _) = dataset1_sized(11, 40);
    let dx = Dogmatix::builder()
        .mapping(setup::cd_mapping())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .build();
    let schema = setup::cd_schema();
    let mut s = dx
        .incremental_session(doc.clone(), schema.clone(), setup::CD_TYPE)
        .expect("session opens");
    dx.detect_delta(&mut s, &[]).expect("initial run");

    let mut incremental_compared = 0usize;
    let mut full_compared = 0usize;
    for k in 0..6 {
        let delta = DocumentDelta::UpdateText {
            index: k * 5,
            path: "title".into(),
            occurrence: 0,
            value: format!("Retitled Album Vol {k}"),
        };
        let inc = dx
            .detect_delta(&mut s, std::slice::from_ref(&delta))
            .expect("delta applies");
        incremental_compared += inc.stats.pairs_compared;

        let final_doc = s.doc().clone();
        let session =
            DetectionSession::new(&final_doc, &schema, dx.mapping(), setup::CD_TYPE).unwrap();
        let full = dx.detect(&session).expect("batch runs");
        full_compared += full.stats.pairs_compared;

        assert_eq!(inc.duplicate_pairs, full.duplicate_pairs, "step {k}");
        assert_eq!(inc.clusters, full.clusters, "step {k}");
        assert_eq!(*inc.ods, *full.ods, "step {k}");
    }
    assert!(
        incremental_compared < full_compared,
        "delta replay must do strictly fewer comparisons \
         ({incremental_compared} vs {full_compared})"
    );
    assert!(s.counters().pairs_reused > 0);
}

/// Same differential on the integrated movie corpus (two candidate
/// schema paths, composite PERSON rules, inferred-free fixed mapping).
#[test]
fn movie_corpus_deltas_match_batch() {
    let (doc, _) = dataset2_sized(5, 25);
    let schema = setup::movie_schema(&doc);
    let dx = Dogmatix::builder()
        .mapping(setup::movie_mapping())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .build();
    let mut s = dx
        .incremental_session(doc, schema.clone(), setup::MOVIE_TYPE)
        .expect("session opens");
    dx.detect_delta(&mut s, &[]).expect("initial run");

    let deltas = [
        DocumentDelta::UpdateText {
            index: 0,
            path: "title".into(),
            occurrence: 0,
            value: "A Completely New Title".into(),
        },
        DocumentDelta::InsertXml {
            parent_path: "/integrated/imdb".into(),
            xml: "<movie><title>A Completely New Title</title>\
                  <year>1994</year></movie>"
                .into(),
        },
        DocumentDelta::RemoveObject { index: 3 },
    ];
    for (k, delta) in deltas.iter().enumerate() {
        let inc = dx
            .detect_delta(&mut s, std::slice::from_ref(delta))
            .expect("delta applies");
        let final_doc = s.doc().clone();
        let session =
            DetectionSession::new(&final_doc, &schema, dx.mapping(), setup::MOVIE_TYPE).unwrap();
        let full = dx.detect(&session).expect("batch runs");
        assert_eq!(inc.candidates, full.candidates, "step {k}");
        assert_eq!(inc.duplicate_pairs, full.duplicate_pairs, "step {k}");
        assert_eq!(inc.possible_pairs, full.possible_pairs, "step {k}");
        assert_eq!(inc.clusters, full.clusters, "step {k}");
        assert_eq!(*inc.ods, *full.ods, "step {k}");
    }
}

/// Applying a whole batch of deltas in one `detect_delta` call is the
/// same as applying them one by one (same final state, same clusters).
#[test]
fn batched_and_stepwise_delta_application_agree() {
    let records: Vec<MiniRecord> = (0..6)
        .map(|i| MiniRecord {
            title: format!("title number {i}"),
            year: 1990 + i,
            names: vec![format!("Person{i}")],
        })
        .collect();
    let ops = [
        DocumentDelta::UpdateText {
            index: 1,
            path: "title".into(),
            occurrence: 0,
            value: "title number 0".into(),
        },
        DocumentDelta::RemoveObject { index: 4 },
        DocumentDelta::InsertXml {
            parent_path: "/db".into(),
            xml: "<item><title>title number 0</title><year>1990</year></item>".into(),
        },
    ];
    let dx = detector(0.15, true, 1);
    let mut stepwise = dx
        .incremental_session_inferred(build_doc(&records), "ITEM")
        .unwrap();
    dx.detect_delta(&mut stepwise, &[]).unwrap();
    let mut last = None;
    for d in &ops {
        last = Some(
            dx.detect_delta(&mut stepwise, std::slice::from_ref(d))
                .unwrap(),
        );
    }
    let mut batched = dx
        .incremental_session_inferred(build_doc(&records), "ITEM")
        .unwrap();
    let all_at_once = dx.detect_delta(&mut batched, &ops).unwrap();
    let last = last.unwrap();
    assert_eq!(last.duplicate_pairs, all_at_once.duplicate_pairs);
    assert_eq!(last.clusters, all_at_once.clusters);
    assert_eq!(stepwise.doc().to_xml(), batched.doc().to_xml());
}

// ---- crash recovery ----------------------------------------------------

/// Unique scratch path for a write-ahead log (proptest runs many cases
/// in one process, and cases must not share files).
fn scratch_wal(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "dogmatix-incremental-{}-{tag}-{n}.wal",
        std::process::id()
    ))
}

fn remove_wal(path: &std::path::Path) {
    let _ = std::fs::remove_file(path);
    let mut ckpt = path.as_os_str().to_os_string();
    ckpt.push(".ckpt");
    let _ = std::fs::remove_file(std::path::PathBuf::from(ckpt));
}

/// "Crashes" a durable session (drops the in-memory state and the log
/// handle on the floor), recovers from disk, and asserts the recovered
/// outcome is bit-identical to `expect` — the uninterrupted control's
/// latest result.
fn crash_and_recover(
    path: &std::path::Path,
    dx: &Dogmatix,
    logged: usize,
    expect: &DetectionResult,
    context: &str,
) -> (IncrementalSession, Wal) {
    let rec = IncrementalSession::recover(path, dx.mapping(), None, FsyncPolicy::Batch)
        .unwrap_or_else(|e| panic!("recovery failed at {context}: {e}"));
    assert!(
        rec.report.dropped_tail.is_none(),
        "committed log reported torn at {context}"
    );
    assert_eq!(
        rec.report.replayed + rec.report.skipped,
        logged,
        "lost deltas at {context}"
    );
    let mut session = rec.session;
    let after = dx
        .detect_delta(&mut session, &[])
        .unwrap_or_else(|e| panic!("post-recovery detect failed at {context}: {e}"));
    assert_outcome_eq(&after, expect, context);
    (session, rec.wal)
}

/// Replays `ops` through a WAL-backed session, killing it after
/// `kill_at` logged deltas and recovering from disk, alongside an
/// uninterrupted control session fed the same concrete deltas. Every
/// result — before the kill, right after recovery, and for every delta
/// replayed through the recovered session — must be bit-identical to
/// the control's (the recovered document re-parses the genesis
/// checkpoint image, whose XML equals the control's starting state, so
/// even arena node ids line up).
fn run_kill_scenario(records: &[MiniRecord], ops: &[OpSpec], theta: f64, kill_at: usize) {
    let dx = detector(theta, false, 1);
    let mut control = dx
        .incremental_session_inferred(build_doc(records), "ITEM")
        .expect("control session opens");
    let durable = dx
        .incremental_session_inferred(build_doc(records), "ITEM")
        .expect("durable session opens");
    let mut last = dx.detect_delta(&mut control, &[]).expect("initial run");

    let path = scratch_wal("kill");
    let mut wal = Some(Wal::create(&path, &durable, FsyncPolicy::Batch).expect("create WAL"));
    let mut durable = Some(durable);
    let mut logged = 0usize;
    let mut crashed = false;

    for (step, op) in ops.iter().enumerate() {
        if !crashed && logged >= kill_at {
            durable.take();
            wal.take();
            crashed = true;
            let context = format!("kill before step {step} ({logged} deltas logged)");
            let (s, w) = crash_and_recover(&path, &dx, logged, &last, &context);
            durable = Some(s);
            wal = Some(w);
        }
        let Some(delta) = concretize(op, &control) else {
            continue;
        };
        let context = format!("step {step} {op:?} (kill_at={kill_at})");
        let w = wal.as_mut().expect("log handle alive");
        w.append(&delta)
            .unwrap_or_else(|e| panic!("append at {context}: {e}"));
        w.commit()
            .unwrap_or_else(|e| panic!("commit at {context}: {e}"));
        logged += 1;
        let s = durable.as_mut().expect("durable session alive");
        let inc = dx
            .detect_delta(s, std::slice::from_ref(&delta))
            .unwrap_or_else(|e| panic!("durable delta failed at {context}: {e}"));
        last = dx
            .detect_delta(&mut control, std::slice::from_ref(&delta))
            .unwrap_or_else(|e| panic!("control delta failed at {context}: {e}"));
        assert_outcome_eq(&inc, &last, &context);
    }

    // A kill point at (or past) the end of the sequence: the final
    // crash still recovers the full stream.
    if !crashed {
        durable.take();
        wal.take();
        let context = format!("kill at end ({logged} deltas logged)");
        crash_and_recover(&path, &dx, logged, &last, &context);
    }
    remove_wal(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(16)))]

    /// The durability centrepiece: random corpus, random delta stream,
    /// kill -9 at a random delta index — the recovered session's
    /// verdicts are bit-identical to a run that was never interrupted.
    #[test]
    fn killed_and_recovered_sessions_match_uninterrupted_runs(
        records in corpus_strategy(),
        ops in proptest::collection::vec(op_strategy(), 1..6),
        kill in 0usize..16,
        theta in 0.10f64..0.6,
    ) {
        run_kill_scenario(&records, &ops, theta, kill % (ops.len() + 1));
    }
}

/// Directed kill-and-recover on the CD corpus with a *mid-stream
/// checkpoint*: recovery re-parses the checkpoint image (fresh arena →
/// different node ids), so the comparison is on the index-based
/// verdicts and the index-free cluster paths.
#[test]
fn cd_kill_after_checkpoint_recovers_bit_identical_verdicts() {
    let (doc, _) = dataset1_sized(9, 30);
    let dx = Dogmatix::builder()
        .mapping(setup::cd_mapping())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .build();
    let schema = setup::cd_schema();
    let mut control = dx
        .incremental_session(doc.clone(), schema.clone(), setup::CD_TYPE)
        .expect("control opens");
    let durable = dx
        .incremental_session(doc, schema.clone(), setup::CD_TYPE)
        .expect("durable opens");
    dx.detect_delta(&mut control, &[]).expect("initial run");

    let path = scratch_wal("cd-ckpt");
    let mut wal = Wal::create(&path, &durable, FsyncPolicy::Batch).expect("create WAL");
    let mut durable = durable;

    let deltas = [
        DocumentDelta::UpdateText {
            index: 2,
            path: "title".into(),
            occurrence: 0,
            value: "Checkpointed Album".into(),
        },
        DocumentDelta::RemoveObject { index: 5 },
        DocumentDelta::UpdateText {
            index: 0,
            path: "artist".into(),
            occurrence: 0,
            value: "Renamed Artist".into(),
        },
    ];
    let mut last = None;
    for (k, delta) in deltas.iter().enumerate() {
        wal.append(delta).expect("append");
        wal.commit().expect("commit");
        dx.detect_delta(&mut durable, std::slice::from_ref(delta))
            .expect("durable delta");
        last = Some(
            dx.detect_delta(&mut control, std::slice::from_ref(delta))
                .expect("control delta"),
        );
        if k == 1 {
            // Snapshot mid-stream: replay must start after LSN 2.
            assert_eq!(wal.checkpoint(&durable).expect("checkpoint"), 2);
        }
    }
    drop(wal);
    drop(durable);

    let rec = IncrementalSession::recover(&path, dx.mapping(), Some(schema), FsyncPolicy::Batch)
        .expect("recover");
    assert_eq!(rec.report.checkpoint_lsn, 2);
    assert_eq!(rec.report.replayed, 1, "only the post-checkpoint delta");
    assert!(rec.report.dropped_tail.is_none());
    let mut recovered = rec.session;
    let after = dx
        .detect_delta(&mut recovered, &[])
        .expect("post-recovery detect");
    let last = last.expect("three deltas ran");
    assert_eq!(after.duplicate_pairs, last.duplicate_pairs);
    assert_eq!(after.possible_pairs, last.possible_pairs);
    assert_eq!(after.clusters, last.clusters);
    assert_eq!(after.f_values, last.f_values);
    assert_eq!(after.pruned, last.pruned);
    assert_eq!(
        cluster_paths(recovered.doc(), &after),
        cluster_paths(control.doc(), &last),
        "clusters diverge across the checkpoint re-parse"
    );
    remove_wal(&path);
}
