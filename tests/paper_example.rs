//! Integration test: the paper's running example, end to end.
//!
//! Table 1 (three movies) + Table 3 (mapping) through the full pipeline,
//! checking the Table 2 object descriptions, the Example 3 verdicts, and
//! the Fig. 3 output document.

use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::pipeline::{Dogmatix, DogmatixConfig};
use dogmatix_repro::core::Mapping;
use dogmatix_repro::xml::{Document, Schema};

fn table1_document() -> Document {
    Document::parse(
        "<moviedoc>\
           <movie><title>The Matrix</title><year>1999</year>\
             <actor><name>Keanu Reeves</name><role>Neo</role></actor>\
             <actor><name>L. Fishburne</name><role>Morpheus</role></actor></movie>\
           <movie><title>Matrix</title><year>1999</year>\
             <actor><name>Keanu Reeves</name><role>The One</role></actor></movie>\
           <movie><title>Signs</title><year>2002</year>\
             <actor><name>Mel Gibson</name><role>Graham Hess</role></actor></movie>\
         </moviedoc>",
    )
    .expect("Table 1 XML is well-formed")
}

fn table3_mapping() -> Mapping {
    Mapping::parse(
        "MOVIE: $doc/moviedoc/movie\n\
         TITLE: $doc/moviedoc/movie/title\n\
         YEAR: $doc/moviedoc/movie/year\n\
         ACTOR: $doc/moviedoc/movie/actor\n\
         ACTORNAME: $doc/moviedoc/movie/actor/name\n\
         ACTORROLE: $doc/moviedoc/movie/actor/role\n",
    )
    .expect("Table 3 mapping is well-formed")
}

fn run_example() -> (Document, dogmatix_repro::core::DetectionResult) {
    let doc = table1_document();
    let schema = Schema::infer(&doc).expect("inference works on the example");
    let config = DogmatixConfig {
        heuristic: HeuristicExpr::r_distant_descendants(2),
        theta_tuple: 0.45, // admits "Matrix" ~ "The Matrix" (ned 0.4)
        use_filter: false, // 3 candidates need no comparison reduction
        ..DogmatixConfig::default()
    };
    let result = Dogmatix::new(config, table3_mapping())
        .run(&doc, &schema, "MOVIE")
        .expect("the example pipeline runs");
    (doc, result)
}

#[test]
fn matrix_movies_form_the_only_cluster() {
    let (_, result) = run_example();
    assert_eq!(result.stats.candidates, 3);
    assert_eq!(result.duplicate_pairs.len(), 1);
    assert_eq!(result.clusters, vec![vec![0, 1]]);
    // "movie 3 has no duplicate because it does not share any OD with
    // either movie 1 or movie 2" (Example 3).
    assert!(!result.is_duplicate(0, 2));
    assert!(!result.is_duplicate(1, 2));
}

#[test]
fn object_descriptions_match_table2_contents() {
    let (_, result) = run_example();
    // Movie 1's OD per Table 2 (plus the roles, which r=2 includes):
    // must contain title, year, and both actor names.
    let values: Vec<&str> = result.ods.od(0).tuples().map(|t| t.value()).collect();
    for expected in ["The Matrix", "1999", "Keanu Reeves", "L. Fishburne"] {
        assert!(values.contains(&expected), "missing {expected}: {values:?}");
    }
    // Tuple types follow the mapping M.
    let title_tuple = result
        .ods
        .od(0)
        .tuples()
        .find(|t| t.value() == "The Matrix")
        .unwrap();
    assert_eq!(title_tuple.rw_type(), "TITLE");
}

#[test]
fn fig3_output_identifies_duplicates_by_xpath() {
    let (doc, result) = run_example();
    let out = result.to_xml(&doc);
    let clusters = out.select("/duplicates/dupcluster").unwrap();
    assert_eq!(clusters.len(), 1);
    assert_eq!(out.attr(clusters[0], "oid"), Some("1"));
    let members = out.select("/duplicates/dupcluster/duplicate").unwrap();
    let xpaths: Vec<&str> = members
        .iter()
        .map(|m| out.attr(*m, "xpath").unwrap())
        .collect();
    assert_eq!(
        xpaths,
        vec!["/moviedoc[1]/movie[1]", "/moviedoc[1]/movie[2]"]
    );
    // The XPaths resolve back to the movie elements in the source.
    for xp in xpaths {
        let found = doc.select(xp).unwrap();
        assert_eq!(found.len(), 1);
        assert_eq!(doc.name(found[0]), Some("movie"));
    }
}

#[test]
fn incomparable_types_never_mix() {
    // ACTORNAME and ACTORROLE are distinct real-world types in M, so
    // "Neo" (role) must never pair with "Keanu Reeves" (name) — neither
    // as similar nor as contradictory data.
    let (_, result) = run_example();
    let engine = dogmatix_repro::core::sim::SimEngine::new(&result.ods, 0.45);
    let mut cache = dogmatix_repro::core::sim::DistCache::new();
    let b = engine.breakdown(0, 1, &mut cache);
    for pair in b.similar.iter().chain(b.contradictory.iter()) {
        let ti = result.ods.od(0).tuple(pair.tuple_i);
        let tj = result.ods.od(1).tuple(pair.tuple_j);
        assert_eq!(
            ti.rw_type(),
            tj.rw_type(),
            "{} vs {}",
            ti.value(),
            tj.value()
        );
    }
}
