//! Cross-crate property tests: random miniature corpora through the
//! whole pipeline, checking invariants that must hold for any input.

use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::pipeline::{Dogmatix, DogmatixConfig};
use dogmatix_repro::core::sim::{DistCache, SimEngine};
use dogmatix_repro::core::Mapping;
use dogmatix_repro::xml::{Document, Schema};
use proptest::prelude::*;

/// A miniature record: (title, year, names).
#[derive(Debug, Clone)]
struct MiniRecord {
    title: String,
    year: u16,
    names: Vec<String>,
}

fn record_strategy() -> impl Strategy<Value = MiniRecord> {
    (
        proptest::string::string_regex("[a-z]{2,10}( [a-z]{2,8})?").unwrap(),
        1960u16..2005,
        proptest::collection::vec(
            proptest::string::string_regex("[A-Z][a-z]{2,7}").unwrap(),
            0..3,
        ),
    )
        .prop_map(|(title, year, names)| MiniRecord { title, year, names })
}

fn corpus_strategy() -> impl Strategy<Value = Vec<MiniRecord>> {
    proptest::collection::vec(record_strategy(), 2..14)
}

fn build_doc(records: &[MiniRecord]) -> Document {
    let mut doc = Document::with_root("db");
    let root = doc.root_element().unwrap();
    for r in records {
        let item = doc.add_element(root, "item");
        doc.add_text_element(item, "title", &r.title);
        doc.add_text_element(item, "year", &r.year.to_string());
        for n in &r.names {
            let person = doc.add_element(item, "person");
            doc.add_text_element(person, "name", n);
        }
    }
    doc
}

fn detect(
    records: &[MiniRecord],
    theta_tuple: f64,
    use_filter: bool,
) -> (Document, dogmatix_repro::core::DetectionResult) {
    let doc = build_doc(records);
    let schema = Schema::infer(&doc).expect("non-empty docs infer");
    let mut mapping = Mapping::new();
    mapping.add_type("ITEM", ["/db/item"]);
    let config = DogmatixConfig {
        heuristic: HeuristicExpr::r_distant_descendants(2),
        theta_tuple,
        use_filter,
        ..DogmatixConfig::default()
    };
    let result = Dogmatix::new(config, mapping)
        .run(&doc, &schema, "ITEM")
        .expect("pipeline runs on any well-formed corpus");
    (doc, result)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn sim_is_symmetric_and_bounded(records in corpus_strategy(),
                                    theta in 0.05f64..0.9) {
        let (_, result) = detect(&records, theta, false);
        let engine = SimEngine::new(&result.ods, theta);
        let mut cache = DistCache::new();
        let n = result.ods.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = engine.sim(i, j, &mut cache);
                let b = engine.sim(j, i, &mut cache);
                prop_assert!((a - b).abs() < 1e-9, "sim({i},{j}) {a} != {b}");
                prop_assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn identical_records_always_cluster(record in record_strategy(),
                                        padding in corpus_strategy()) {
        // A record and its exact copy must be detected as duplicates
        // regardless of the rest of the corpus (their sim is 1 whenever
        // any positive-idf data exists; softIDF degenerates only if the
        // padding contains the exact same record too).
        let mut records = padding.clone();
        // Make the pair's title unique relative to the padding.
        let mut target = record.clone();
        target.title = format!("{} zzzuniq", target.title);
        records.push(target.clone());
        records.push(target.clone());
        let (_, result) = detect(&records, 0.15, false);
        let a = records.len() - 2;
        let b = records.len() - 1;
        prop_assert!(result.is_duplicate(a, b),
            "exact copies not detected: {target:?}");
    }

    #[test]
    fn filter_only_removes_pairs(records in corpus_strategy()) {
        let (_, with) = detect(&records, 0.15, true);
        let (_, without) = detect(&records, 0.15, false);
        for pair in &with.duplicate_pairs {
            prop_assert!(without.duplicate_pairs.contains(pair));
        }
    }

    #[test]
    fn output_xpaths_resolve(records in corpus_strategy()) {
        let (doc, result) = detect(&records, 0.3, false);
        let out = result.to_xml(&doc);
        for dup in out.select("/duplicates/dupcluster/duplicate").unwrap() {
            let xp = out.attr(dup, "xpath").unwrap();
            prop_assert_eq!(doc.select(xp).unwrap().len(), 1, "xpath {}", xp);
        }
    }

    #[test]
    fn clusters_partition_their_members(records in corpus_strategy()) {
        let (_, result) = detect(&records, 0.3, false);
        let mut seen = std::collections::HashSet::new();
        for cluster in &result.clusters {
            prop_assert!(cluster.len() >= 2);
            for m in cluster {
                prop_assert!(seen.insert(*m), "candidate {} in two clusters", m);
            }
        }
    }

    #[test]
    fn stats_are_consistent(records in corpus_strategy()) {
        let (_, result) = detect(&records, 0.15, true);
        let n = result.stats.candidates;
        prop_assert_eq!(n, records.len());
        prop_assert_eq!(result.stats.pairs_total, n * n.saturating_sub(1) / 2);
        prop_assert!(result.stats.pairs_compared <= result.stats.pairs_total);
        let active = n - result.stats.pruned_by_filter;
        prop_assert_eq!(
            result.stats.pairs_compared,
            active * active.saturating_sub(1) / 2
        );
    }
}
