//! Cross-crate property tests: random miniature corpora through the
//! whole pipeline, checking invariants that must hold for any input.

mod common;

use common::{build_doc, record_strategy, MiniRecord};
use dogmatix_repro::core::filter::QGramBlocking;
use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::pipeline::{Dogmatix, DogmatixConfig};
use dogmatix_repro::core::sim::{DistCache, SimEngine};
use dogmatix_repro::core::Mapping;
use dogmatix_repro::xml::{Document, Schema};
use proptest::prelude::*;

fn corpus_strategy() -> impl Strategy<Value = Vec<MiniRecord>> {
    proptest::collection::vec(record_strategy(), 2..14)
}

fn detect(
    records: &[MiniRecord],
    theta_tuple: f64,
    use_filter: bool,
) -> (Document, dogmatix_repro::core::DetectionResult) {
    let doc = build_doc(records);
    let schema = Schema::infer(&doc).expect("non-empty docs infer");
    let mut mapping = Mapping::new();
    mapping.add_type("ITEM", ["/db/item"]);
    let config = DogmatixConfig {
        heuristic: HeuristicExpr::r_distant_descendants(2),
        theta_tuple,
        use_filter,
        ..DogmatixConfig::default()
    };
    let result = Dogmatix::new(config, mapping)
        .run(&doc, &schema, "ITEM")
        .expect("pipeline runs on any well-formed corpus");
    (doc, result)
}

/// One typographical edit applied to a string at proptest-chosen
/// coordinates (the dirty-duplicate generator's error classes, made
/// deterministic for shrinking).
#[derive(Debug, Clone)]
enum Typo {
    Delete { pos: usize },
    Substitute { pos: usize, with: char },
    Insert { pos: usize, what: char },
}

impl Typo {
    fn apply(&self, s: &str) -> String {
        let mut chars: Vec<char> = s.chars().collect();
        if chars.is_empty() {
            return s.to_string();
        }
        match *self {
            Typo::Delete { pos } => {
                chars.remove(pos % chars.len());
            }
            Typo::Substitute { pos, with } => {
                let p = pos % chars.len();
                chars[p] = with;
            }
            Typo::Insert { pos, what } => {
                let p = pos % (chars.len() + 1);
                chars.insert(p, what);
            }
        }
        chars.into_iter().collect()
    }
}

fn typo_strategy() -> impl Strategy<Value = Typo> {
    let letter = |offset: u8| (b'a' + offset % 26) as char;
    prop_oneof![
        (0usize..32).prop_map(|pos| Typo::Delete { pos }),
        (0usize..32, 0u8..26).prop_map(move |(pos, c)| Typo::Substitute {
            pos,
            with: letter(c)
        }),
        (0usize..32, 0u8..26).prop_map(move |(pos, c)| Typo::Insert {
            pos,
            what: letter(c)
        }),
    ]
}

/// A dirty corpus: originals plus duplicates derived by 1–2 typos on the
/// title — the shape the q-gram count filter must never lose.
fn dirty_corpus_strategy() -> impl Strategy<Value = Vec<MiniRecord>> {
    (
        proptest::collection::vec(record_strategy(), 2..8),
        proptest::collection::vec(
            (0usize..16, proptest::collection::vec(typo_strategy(), 1..3)),
            1..4,
        ),
    )
        .prop_map(|(mut records, dirt)| {
            for (slot, typos) in dirt {
                let mut dup = records[slot % records.len()].clone();
                for t in &typos {
                    dup.title = t.apply(&dup.title);
                }
                records.push(dup);
            }
            records
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The count-filter guarantee: `QGramBlocking`'s candidate pair set
    /// is a superset of every pair brute-force edit distance finds a
    /// similar tuple pair for — and hence of every pair the exhaustive
    /// pipeline classifies as duplicates — on generated dirty corpora.
    #[test]
    fn qgram_blocking_is_superset_of_brute_force(
        records in dirty_corpus_strategy(),
        theta in 0.05f64..0.7,
        q in 2usize..4,
    ) {
        let (_, exhaustive) = detect(&records, theta, false);
        let ods = &exhaustive.ods;
        let plan = QGramBlocking::new(q, theta).plan(ods);

        // Tuple-level brute force: any pair of objects holding a
        // comparable tuple pair within the threshold must survive.
        for i in 0..ods.len() {
            for j in (i + 1)..ods.len() {
                let similar = ods.od(i).tuples().any(|ti| {
                    ods.od(j).tuples().any(|tj| {
                        ti.type_id() == tj.type_id()
                            && dogmatix_repro::textsim::ned(
                                ods.term(ti.term()).norm(),
                                ods.term(tj.term()).norm(),
                            ) < theta
                    })
                });
                if similar {
                    prop_assert!(
                        plan.pairs.contains(&(i, j)),
                        "q={} theta={}: pair ({i},{j}) with a similar tuple \
                         pair missing from the q-gram plan", q, theta
                    );
                }
            }
        }

        // Pipeline-level corollary: every exhaustively detected
        // duplicate pair is in the plan.
        for &(i, j, _) in &exhaustive.duplicate_pairs {
            prop_assert!(plan.pairs.contains(&(i, j)), "duplicate ({i},{j}) lost");
        }
    }

    #[test]
    fn sim_is_symmetric_and_bounded(records in corpus_strategy(),
                                    theta in 0.05f64..0.9) {
        let (_, result) = detect(&records, theta, false);
        let engine = SimEngine::new(&result.ods, theta);
        let mut cache = DistCache::new();
        let n = result.ods.len();
        for i in 0..n {
            for j in (i + 1)..n {
                let a = engine.sim(i, j, &mut cache);
                let b = engine.sim(j, i, &mut cache);
                prop_assert!((a - b).abs() < 1e-9, "sim({i},{j}) {a} != {b}");
                prop_assert!((0.0..=1.0).contains(&a));
            }
        }
    }

    #[test]
    fn identical_records_always_cluster(record in record_strategy(),
                                        padding in corpus_strategy()) {
        // A record and its exact copy must be detected as duplicates
        // regardless of the rest of the corpus (their sim is 1 whenever
        // any positive-idf data exists; softIDF degenerates only if the
        // padding contains the exact same record too).
        let mut records = padding.clone();
        // Make the pair's title unique relative to the padding.
        let mut target = record.clone();
        target.title = format!("{} zzzuniq", target.title);
        records.push(target.clone());
        records.push(target.clone());
        let (_, result) = detect(&records, 0.15, false);
        let a = records.len() - 2;
        let b = records.len() - 1;
        prop_assert!(result.is_duplicate(a, b),
            "exact copies not detected: {target:?}");
    }

    #[test]
    fn filter_only_removes_pairs(records in corpus_strategy()) {
        let (_, with) = detect(&records, 0.15, true);
        let (_, without) = detect(&records, 0.15, false);
        for pair in &with.duplicate_pairs {
            prop_assert!(without.duplicate_pairs.contains(pair));
        }
    }

    #[test]
    fn output_xpaths_resolve(records in corpus_strategy()) {
        let (doc, result) = detect(&records, 0.3, false);
        let out = result.to_xml(&doc);
        for dup in out.select("/duplicates/dupcluster/duplicate").unwrap() {
            let xp = out.attr(dup, "xpath").unwrap();
            prop_assert_eq!(doc.select(xp).unwrap().len(), 1, "xpath {}", xp);
        }
    }

    #[test]
    fn clusters_partition_their_members(records in corpus_strategy()) {
        let (_, result) = detect(&records, 0.3, false);
        let mut seen = std::collections::HashSet::new();
        for cluster in &result.clusters {
            prop_assert!(cluster.len() >= 2);
            for m in cluster {
                prop_assert!(seen.insert(*m), "candidate {} in two clusters", m);
            }
        }
    }

    #[test]
    fn stats_are_consistent(records in corpus_strategy()) {
        let (_, result) = detect(&records, 0.15, true);
        let n = result.stats.candidates;
        prop_assert_eq!(n, records.len());
        prop_assert_eq!(result.stats.pairs_total, n * n.saturating_sub(1) / 2);
        prop_assert!(result.stats.pairs_compared <= result.stats.pairs_total);
        let active = n - result.stats.pruned_by_filter;
        prop_assert_eq!(
            result.stats.pairs_compared,
            active * active.saturating_sub(1) / 2
        );
    }
}
