//! Robustness: the pipeline on degenerate and messy corpora must produce
//! sensible results (or typed errors) — never panics.

use dogmatix_repro::core::fusion::{fuse_clusters, FusionConfig};
use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::pipeline::{Dogmatix, DogmatixConfig};
use dogmatix_repro::core::Mapping;
use dogmatix_repro::xml::{Document, Schema};

fn run(xml: &str, candidate: &str) -> dogmatix_repro::core::DetectionResult {
    let doc = Document::parse(xml).unwrap();
    let schema = Schema::infer(&doc).unwrap();
    let mut mapping = Mapping::new();
    mapping.add_type("T", [candidate]);
    Dogmatix::new(
        DogmatixConfig {
            heuristic: HeuristicExpr::r_distant_descendants(2),
            ..DogmatixConfig::default()
        },
        mapping,
    )
    .run(&doc, &schema, "T")
    .expect("pipeline must handle degenerate corpora")
}

#[test]
fn single_candidate_yields_nothing() {
    let r = run("<db><item><v>x</v></item></db>", "/db/item");
    assert_eq!(r.stats.candidates, 1);
    assert!(r.duplicate_pairs.is_empty());
    assert!(r.clusters.is_empty());
}

#[test]
fn all_identical_candidates_form_one_cluster() {
    let r = run(
        "<db><item><v>same</v></item><item><v>same</v></item>\
             <item><v>same</v></item><item><v>other</v></item></db>",
        "/db/item",
    );
    assert_eq!(r.clusters.len(), 1);
    assert_eq!(r.clusters[0], vec![0, 1, 2]);
}

#[test]
fn textless_candidates_are_all_pruned_or_unmatched() {
    let r = run(
        "<db><item><sub/><sub/></item><item><sub/></item></db>",
        "/db/item",
    );
    assert!(r.duplicate_pairs.is_empty());
}

#[test]
fn whitespace_and_entity_heavy_values() {
    let r = run(
        "<db><item><v>  a &amp; b  </v></item><item><v>a &amp; b</v></item>\
             <item><v>c &lt; d</v></item><item><v>e &gt; f</v></item></db>",
        "/db/item",
    );
    // Normalisation makes the first two identical.
    assert!(r.is_duplicate(0, 1));
    assert!(!r.is_duplicate(2, 3));
}

#[test]
fn unicode_values_compare_correctly() {
    let r = run(
        "<db><item><v>Fahrvergnügen Straße</v></item>\
             <item><v>Fahrvergnügen Strasse</v></item>\
             <item><v>日本語のタイトル</v></item>\
             <item><v>日本語のタイトレ</v></item></db>",
        "/db/item",
    );
    // ß→ss is 2 edits over 20 chars (0.1 < 0.15) → duplicates.
    assert!(r.is_duplicate(0, 1), "{:?}", r.duplicate_pairs);
    // One kana of 8 differs (0.125 < 0.15) → duplicates.
    assert!(r.is_duplicate(2, 3), "{:?}", r.duplicate_pairs);
    assert!(!r.is_duplicate(0, 2));
}

#[test]
fn mixed_content_candidates() {
    let r = run(
        "<db><item>prefix <v>x</v> suffix</item><item>prefix <v>x</v> suffix</item>\
             <item>other <v>y</v> thing</item></db>",
        "/db/item",
    );
    assert!(r.is_duplicate(0, 1));
}

#[test]
fn wildly_heterogeneous_structures_do_not_crash() {
    let r = run(
        "<db>\
           <item><a><b><c>deep</c></b></a></item>\
           <item>flat text</item>\
           <item><x>1</x><x>2</x><x>3</x><x>4</x><x>5</x></item>\
           <item/>\
         </db>",
        "/db/item",
    );
    assert_eq!(r.stats.candidates, 4);
}

#[test]
fn fusion_of_detected_clusters_shrinks_the_corpus() {
    let xml = "<db><item><v>dup val</v></item><item><v>dup val</v></item>\
                   <item><v>solo</v></item></db>";
    let doc = Document::parse(xml).unwrap();
    let schema = Schema::infer(&doc).unwrap();
    let mut mapping = Mapping::new();
    mapping.add_type("T", ["/db/item"]);
    let result = Dogmatix::new(
        DogmatixConfig {
            heuristic: HeuristicExpr::r_distant_descendants(1),
            use_filter: false,
            ..DogmatixConfig::default()
        },
        mapping,
    )
    .run(&doc, &schema, "T")
    .unwrap();
    assert_eq!(result.clusters.len(), 1);
    let fused = fuse_clusters(
        &doc,
        &result.candidates,
        &result.clusters,
        FusionConfig::default(),
    );
    assert_eq!(fused.select("/db/item").unwrap().len(), 2);
}

#[test]
fn query_formulation_matches_pipeline_selection() {
    // The emitted XQuery must reference exactly the paths the heuristic
    // selected.
    let doc = Document::parse("<db><item><a>1</a><b><c>2</c></b></item><item><a>3</a></item></db>")
        .unwrap();
    let schema = Schema::infer(&doc).unwrap();
    let e0 = schema.find_by_path("/db/item").unwrap();
    let heuristic = HeuristicExpr::r_distant_descendants(2);
    let selection = heuristic.select_paths(&schema, e0);
    let q = dogmatix_repro::core::query::description_query("/db/item", &selection);
    assert!(q.contains("$c/a"));
    assert!(q.contains("$c/b/c"));
    assert!(q.contains("for $c in $doc/db/item"));
}

#[test]
fn threshold_extremes() {
    let xml = "<db><item><v>alpha</v></item><item><v>alpha</v></item>\
                   <item><v>beta</v></item></db>";
    let doc = Document::parse(xml).unwrap();
    let schema = Schema::infer(&doc).unwrap();
    let mut mapping = Mapping::new();
    mapping.add_type("T", ["/db/item"]);
    let run_theta = |theta_cand: f64| {
        Dogmatix::new(
            DogmatixConfig {
                heuristic: HeuristicExpr::r_distant_descendants(1),
                theta_cand,
                use_filter: false,
                ..DogmatixConfig::default()
            },
            mapping.clone(),
        )
        .run(&doc, &schema, "T")
        .unwrap()
    };
    // θ_cand = 1.0: sim > 1 is impossible → nothing detected.
    assert!(run_theta(1.0).duplicate_pairs.is_empty());
    // θ_cand = 0.0: any positive similarity is a duplicate.
    assert!(run_theta(0.0).is_duplicate(0, 1));
}
