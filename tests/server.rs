//! `dogmatixd` differential gate: probe verdicts served over TCP must
//! equal a from-scratch batch run's verdicts — membership, classification
//! AND bit-identical similarities — on the seeded CD and movie corpora,
//! including while ingest mutates the corpus concurrently.
//!
//! The equality argument: a probe record is interned *after* every
//! corpus object, so the extended OD set (and with it softIDF over
//! `|Ω|+1`) is bit-identical to a batch run over the corpus with the
//! record appended last; the candidate query orders candidates by node
//! id, and an appended subtree always carries the highest ids, so the
//! record is the last batch candidate. Ground truths below are computed
//! exactly that way — `dx.run` over `doc.clone()` + `append_xml`.

use dogmatix_bench::{CdFixture, MovieFixture};
use dogmatix_repro::core::filter::QGramBlocking;
use dogmatix_repro::core::heuristics::HeuristicExpr;
use dogmatix_repro::core::probe::ProbeBlocking;
use dogmatix_repro::core::{Dogmatix, FsyncPolicy, IncrementalSession, Wal};
use dogmatix_repro::eval::setup::{CD_TYPE, MOVIE_TYPE, THETA_TUPLE};
use dogmatix_repro::server::{serve, serve_durable, ServerConfig, ServerHandle};
use dogmatix_repro::xml::{Document, Schema};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---- wire-level test client -------------------------------------------

/// One persistent protocol connection.
struct Client {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl Client {
    fn connect(addr: SocketAddr) -> Client {
        let stream = TcpStream::connect(addr).expect("connect to dogmatixd");
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("set client read timeout");
        Client {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: stream,
        }
    }

    /// Sends one request line and reads the one-line response.
    fn request(&mut self, line: &str) -> String {
        self.send_terminated(line, "\n")
    }

    /// Like [`Client::request`] but CRLF-terminated, the framing of
    /// `telnet`/Windows clients.
    fn request_crlf(&mut self, line: &str) -> String {
        self.send_terminated(line, "\r\n")
    }

    fn send_terminated(&mut self, line: &str, terminator: &str) -> String {
        self.writer
            .write_all(format!("{line}{terminator}").as_bytes())
            .expect("write request");
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(
            resp.ends_with('\n'),
            "response truncated (connection closed?): {resp:?}"
        );
        resp.trim_end().to_string()
    }

    /// Writes one request line *without* waiting for the response —
    /// used to pile jobs into the ingest queue.
    fn fire(&mut self, line: &str) {
        self.writer
            .write_all(format!("{line}\n").as_bytes())
            .expect("write request");
    }

    /// Reads the one-line response of an earlier [`Client::fire`].
    fn read_reply(&mut self) -> String {
        let mut resp = String::new();
        self.reader.read_line(&mut resp).expect("read response");
        assert!(
            resp.ends_with('\n'),
            "response truncated (connection closed?): {resp:?}"
        );
        resp.trim_end().to_string()
    }
}

/// Parses the consistent triple out of an `OK seq=… objects=… pairs=…`
/// stats line.
fn parse_stats(resp: &str) -> (u64, usize, usize) {
    let mut seq = None;
    let mut objects = None;
    let mut pairs = None;
    assert!(resp.starts_with("OK "), "not an OK stats line: {resp}");
    for word in resp.split_whitespace() {
        if let Some(v) = word.strip_prefix("seq=") {
            seq = v.parse().ok();
        } else if let Some(v) = word.strip_prefix("objects=") {
            objects = v.parse().ok();
        } else if let Some(v) = word.strip_prefix("pairs=") {
            pairs = v.parse().ok();
        }
    }
    (
        seq.unwrap_or_else(|| panic!("missing seq= in {resp}")),
        objects.unwrap_or_else(|| panic!("missing objects= in {resp}")),
        pairs.unwrap_or_else(|| panic!("missing pairs= in {resp}")),
    )
}

/// A parsed `OK n=… <idx>:<sim> … seq=… examined=<e>/<t>` probe response.
#[derive(Debug)]
struct ProbeReply {
    matches: Vec<(usize, f64)>,
    seq: u64,
    examined: usize,
    total: usize,
}

fn parse_probe_reply(resp: &str) -> ProbeReply {
    let mut words = resp.split_whitespace();
    assert_eq!(words.next(), Some("OK"), "not an OK response: {resp}");
    let n: usize = words
        .next()
        .and_then(|w| w.strip_prefix("n="))
        .and_then(|w| w.parse().ok())
        .unwrap_or_else(|| panic!("missing n= in {resp}"));
    let mut matches = Vec::with_capacity(n);
    let mut seq = None;
    let mut examined = None;
    for word in words {
        if let Some(s) = word.strip_prefix("seq=") {
            seq = s.parse().ok();
        } else if let Some(e) = word.strip_prefix("examined=") {
            let (ex, total) = e.split_once('/').expect("examined=<e>/<t>");
            examined = Some((
                ex.parse::<usize>().expect("examined count"),
                total.parse::<usize>().expect("total count"),
            ));
        } else {
            let (idx, sim) = word.split_once(':').expect("match token <idx>:<sim>");
            // f64 Display prints the shortest round-tripping form, so
            // parsing back recovers the server's bits exactly.
            matches.push((
                idx.parse::<usize>().expect("match index"),
                sim.parse::<f64>().expect("match sim"),
            ));
        }
    }
    assert_eq!(matches.len(), n, "n= disagrees with match list: {resp}");
    let (examined, total) = examined.unwrap_or_else(|| panic!("missing examined= in {resp}"));
    ProbeReply {
        matches,
        seq: seq.unwrap_or_else(|| panic!("missing seq= in {resp}")),
        examined,
        total,
    }
}

// ---- ground truth ------------------------------------------------------

/// From-scratch batch verdicts for `record_xml` probed against `doc`:
/// appends the record under `parent_path`, runs the full pipeline, and
/// returns the duplicate pairs involving the appended record in the
/// probe's order (sim descending, index ascending), capped at `k`.
fn batch_expected(
    dx: &Dogmatix,
    doc: &Document,
    schema: Option<&Schema>,
    rw_type: &str,
    parent_path: &str,
    record_xml: &str,
    k: usize,
) -> Vec<(usize, f64)> {
    let mut extended = doc.clone();
    let parent = extended.select(parent_path).expect("select parent")[0];
    extended
        .append_xml(parent, record_xml)
        .expect("append probe record");
    let inferred;
    let schema = match schema {
        Some(s) => s,
        None => {
            inferred = Schema::infer(&extended).expect("infer schema");
            &inferred
        }
    };
    let result = dx.run(&extended, schema, rw_type).expect("batch run");
    let last = result.candidates.len() - 1;
    let mut expected: Vec<(usize, f64)> = result
        .duplicate_pairs
        .iter()
        .filter(|&&(i, j, _)| i == last || j == last)
        .map(|&(i, j, sim)| (if i == last { j } else { i }, sim))
        .collect();
    expected.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    expected.truncate(k);
    expected
}

fn qgram_blocking() -> ProbeBlocking {
    ProbeBlocking::QGram(QGramBlocking::new(2, THETA_TUPLE))
}

/// Boots a server over the CD fixture, returning the handle and the
/// pieces ground truths need.
fn boot_cd(n: usize, config: ServerConfig) -> (ServerHandle, CdFixture, Dogmatix) {
    let fixture = CdFixture::dataset1(n);
    let dx = fixture.detector(HeuristicExpr::r_distant_descendants(2), false);
    let session = dx
        .incremental_session(fixture.doc.clone(), fixture.schema.clone(), CD_TYPE)
        .expect("open CD session");
    let handle = serve(
        fixture.detector(HeuristicExpr::r_distant_descendants(2), false),
        session,
        config,
    )
    .expect("boot dogmatixd");
    (handle, fixture, dx)
}

/// Serialised fragments of the corpus candidates at `path` — realistic
/// probe records that are guaranteed near-duplicates of their source.
fn candidate_fragments(doc: &Document, path: &str) -> Vec<String> {
    doc.select(path)
        .expect("select candidates")
        .iter()
        .map(|&node| doc.node_xml(node))
        .collect()
}

// ---- the differential gate --------------------------------------------

#[test]
fn cd_probe_verdicts_equal_batch_verdicts_over_live_ingest() {
    let config = ServerConfig {
        workers: 2,
        blocking: qgram_blocking(),
        ..ServerConfig::default()
    };
    let (handle, fixture, dx) = boot_cd(16, config);
    let fragments = candidate_fragments(&fixture.doc, "/discs/disc");
    let k = 5;
    let mut client = Client::connect(handle.addr());

    // Probes against the initial snapshot (seq 1).
    let mut answered = 0;
    for fragment in fragments.iter().take(4) {
        let reply = parse_probe_reply(&client.request(&format!("PROBE {k} {fragment}")));
        assert_eq!(reply.seq, 1);
        let expected = batch_expected(
            &dx,
            &fixture.doc,
            Some(&fixture.schema),
            CD_TYPE,
            "/discs",
            fragment,
            k,
        );
        assert_eq!(
            reply.matches, expected,
            "probe verdicts diverge from batch for {fragment}"
        );
        assert!(
            reply.examined <= reply.total,
            "examined {} of {}",
            reply.examined,
            reply.total
        );
        answered += reply.matches.len();
    }
    assert!(answered > 0, "no probe found its own source disc");

    // Ingest a new disc (a copy of disc 0 — a planted duplicate), then
    // verify probes reflect the grown corpus exactly.
    let planted = &fragments[0];
    let ack = client.request(&format!("INGEST insert /discs {planted}"));
    assert!(ack.starts_with("OK ingested seq=2 "), "bad ack: {ack}");

    let mut grown = fixture.doc.clone();
    let discs = grown.select("/discs").expect("select /discs")[0];
    grown.append_xml(discs, planted).expect("apply ingest");

    for fragment in fragments.iter().take(3) {
        let reply = parse_probe_reply(&client.request(&format!("PROBE {k} {fragment}")));
        assert_eq!(reply.seq, 2);
        let expected = batch_expected(
            &dx,
            &grown,
            Some(&fixture.schema),
            CD_TYPE,
            "/discs",
            fragment,
            k,
        );
        assert_eq!(
            reply.matches, expected,
            "post-ingest probe diverges from batch for {fragment}"
        );
    }

    // The stats line reflects the served work.
    let stats = client.request("STATS");
    assert!(stats.starts_with("OK seq=2 "), "bad stats: {stats}");
    assert!(stats.contains(" ingests=1 "), "bad stats: {stats}");
    handle.shutdown();
}

#[test]
fn movie_probe_verdicts_equal_batch_verdicts() {
    let fixture = MovieFixture::dataset2(10);
    let dx = fixture.detector(HeuristicExpr::k_closest_descendants(6), false);
    let session = dx
        .incremental_session_inferred(fixture.doc.clone(), MOVIE_TYPE)
        .expect("open movie session");
    let handle = serve(
        fixture.detector(HeuristicExpr::k_closest_descendants(6), false),
        session,
        ServerConfig {
            workers: 2,
            blocking: qgram_blocking(),
            ..ServerConfig::default()
        },
    )
    .expect("boot dogmatixd");
    let mut client = Client::connect(handle.addr());
    let k = 5;

    // Probe with records from both sources. A fragment rooted <movie>
    // always resolves to the first candidate path (imdb), so the ground
    // truth appends there — for either source's record.
    let mut fragments = candidate_fragments(&fixture.doc, "/integrated/imdb/movie");
    fragments.truncate(2);
    let mut filmdienst = candidate_fragments(&fixture.doc, "/integrated/filmdienst/movie");
    filmdienst.truncate(2);
    fragments.append(&mut filmdienst);

    let mut answered = 0;
    for fragment in &fragments {
        let reply = parse_probe_reply(&client.request(&format!("PROBE {k} {fragment}")));
        assert_eq!(reply.seq, 1);
        let expected = batch_expected(
            &dx,
            &fixture.doc,
            None, // inferred schema, like the session's
            MOVIE_TYPE,
            "/integrated/imdb",
            fragment,
            k,
        );
        assert_eq!(
            reply.matches, expected,
            "movie probe diverges from batch for {fragment}"
        );
        answered += reply.matches.len();
    }
    assert!(answered > 0, "no movie probe found its own source");
    handle.shutdown();
}

#[test]
fn interleaved_probes_and_ingest_agree_with_batch_at_the_served_snapshot() {
    let config = ServerConfig {
        workers: 4,
        blocking: qgram_blocking(),
        ..ServerConfig::default()
    };
    let (handle, fixture, dx) = boot_cd(10, config);
    let fragments = candidate_fragments(&fixture.doc, "/discs/disc");
    let k = 8;
    let ingests = 5.min(fragments.len());

    // Sequential acked ingests publish one snapshot each, so the doc
    // state at sequence `s` is the seed plus the first `s - 1` inserts.
    let mut doc_states = vec![fixture.doc.clone()];
    for fragment in fragments.iter().take(ingests) {
        let mut next = doc_states.last().expect("seed state").clone();
        let discs = next.select("/discs").expect("select /discs")[0];
        next.append_xml(discs, fragment).expect("apply ingest");
        doc_states.push(next);
    }

    // Probe threads hammer the server while the main thread ingests.
    let stop = Arc::new(AtomicBool::new(false));
    let addr = handle.addr();
    let mut probers = Vec::new();
    for (t, fragment) in fragments.iter().take(3).cloned().enumerate() {
        let stop = Arc::clone(&stop);
        probers.push(
            std::thread::Builder::new()
                .name(format!("prober-{t}"))
                .spawn(move || {
                    let mut client = Client::connect(addr);
                    let mut seen: Vec<(u64, Vec<(usize, f64)>)> = Vec::new();
                    while !stop.load(Ordering::SeqCst) {
                        let reply =
                            parse_probe_reply(&client.request(&format!("PROBE {k} {fragment}")));
                        seen.push((reply.seq, reply.matches));
                    }
                    (fragment, seen)
                })
                .expect("spawn prober"),
        );
    }

    // A stats thread hammers STATS concurrently: its (seq, objects,
    // pairs) triple must always be torn-free — every triple describes
    // one published snapshot, never a mix of two.
    let stats_thread = {
        let stop = Arc::clone(&stop);
        std::thread::Builder::new()
            .name("stats-prober".to_string())
            .spawn(move || {
                let mut client = Client::connect(addr);
                let mut seen: Vec<(u64, usize, usize)> = Vec::new();
                while !stop.load(Ordering::SeqCst) {
                    seen.push(parse_stats(&client.request("STATS")));
                }
                seen
            })
            .expect("spawn stats prober")
    };

    let mut ingest_client = Client::connect(addr);
    for (i, fragment) in fragments.iter().take(ingests).enumerate() {
        let ack = ingest_client.request(&format!("INGEST insert /discs {fragment}"));
        let want = format!("OK ingested seq={} ", i + 2);
        assert!(ack.starts_with(&want), "bad ack for insert {i}: {ack}");
    }
    stop.store(true, Ordering::SeqCst);

    // Check the stats triples: at sequence s the corpus is the seed
    // plus s-1 inserts, and the pair count is the batch run's over
    // exactly that state.
    let base_objects = fragments.len();
    let mut pairs_at_seq: HashMap<u64, usize> = HashMap::new();
    for (seq, objects, pairs) in stats_thread.join().expect("join stats prober") {
        assert_eq!(
            objects,
            base_objects + (seq - 1) as usize,
            "stats objects torn from seq"
        );
        let expected_pairs = *pairs_at_seq.entry(seq).or_insert_with(|| {
            let state = &doc_states[(seq - 1) as usize];
            dx.run(state, &fixture.schema, CD_TYPE)
                .expect("batch run for stats")
                .duplicate_pairs
                .len()
        });
        assert_eq!(pairs, expected_pairs, "stats pairs torn from seq {seq}");
    }

    // Every probe answer must equal a from-scratch batch run at the doc
    // state its sequence number names.
    let mut truth_cache: HashMap<(u64, String), Vec<(usize, f64)>> = HashMap::new();
    let mut checked = 0;
    for prober in probers {
        let (fragment, seen) = prober.join().expect("join prober");
        for (seq, matches) in seen {
            let state = &doc_states[(seq - 1) as usize];
            let expected = truth_cache
                .entry((seq, fragment.clone()))
                .or_insert_with(|| {
                    batch_expected(
                        &dx,
                        state,
                        Some(&fixture.schema),
                        CD_TYPE,
                        "/discs",
                        &fragment,
                        k,
                    )
                });
            assert_eq!(
                &matches, expected,
                "probe at seq {seq} diverges from the batch run at that state"
            );
            checked += 1;
        }
    }
    assert!(checked >= 3, "probe threads produced too few answers");
    handle.shutdown();
}

// ---- protocol robustness ----------------------------------------------

#[test]
fn malformed_requests_get_structured_errors_and_keep_the_connection() {
    let (handle, fixture, _dx) = boot_cd(4, ServerConfig::default());
    let mut client = Client::connect(handle.addr());

    for (request, kind) in [
        ("FROBNICATE now", "ERR protocol:"),
        ("", "ERR protocol:"),
        ("PROBE", "ERR protocol:"),
        ("PROBE five <disc/>", "ERR protocol:"),
        ("PROBE 3 <unclosed", "ERR xml:"),
        ("PROBE 3 no markup at all", "ERR xml:"),
        ("PROBE 3 <notacandidate/>", "ERR protocol:"),
        ("INGEST", "ERR protocol:"),
        ("INGEST frobnicate 3", "ERR protocol:"),
        ("INGEST remove notanindex", "ERR protocol:"),
        ("INGEST insert /nowhere <disc/>", "ERR delta:"),
    ] {
        let resp = client.request(request);
        assert!(
            resp.starts_with(kind),
            "want '{kind}' for {request:?}, got: {resp}"
        );
    }

    // The connection survived all of it.
    let fragment = fixture
        .doc
        .node_xml(fixture.doc.select("/discs/disc").expect("select")[0]);
    let resp = client.request(&format!("PROBE 3 {fragment}"));
    assert!(resp.starts_with("OK n="), "connection unusable: {resp}");
    handle.shutdown();
}

#[test]
fn oversized_requests_are_answered_without_dropping_the_connection() {
    let (handle, _fixture, _dx) = boot_cd(
        4,
        ServerConfig {
            max_line_bytes: 256,
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr());

    let oversized = format!("PROBE 3 <disc><title>{}</title></disc>", "x".repeat(2048));
    let resp = client.request(&oversized);
    assert!(
        resp.starts_with("ERR protocol:") && resp.contains("256 bytes"),
        "bad oversize answer: {resp}"
    );

    // The tail of the oversized line was discarded, not parsed as the
    // next request — a request under the cap still works.
    let resp = client.request("STATS");
    assert!(resp.starts_with("OK seq="), "connection unusable: {resp}");
    handle.shutdown();
}

#[test]
fn shutdown_command_stops_the_server() {
    let (handle, _fixture, _dx) = boot_cd(4, ServerConfig::default());
    let mut client = Client::connect(handle.addr());
    assert_eq!(client.request("SHUTDOWN"), "OK bye");
    // join() returns once every thread noticed the flag.
    handle.join();
}

#[test]
fn crlf_terminated_requests_are_accepted() {
    let (handle, fixture, _dx) = boot_cd(6, ServerConfig::default());
    let mut client = Client::connect(handle.addr());

    let stats = client.request_crlf("STATS");
    assert!(
        stats.starts_with("OK seq=1 "),
        "CRLF STATS refused: {stats}"
    );

    let fragment = fixture
        .doc
        .node_xml(fixture.doc.select("/discs/disc").expect("select")[0]);
    let probe = client.request_crlf(&format!("PROBE 3 {fragment}"));
    assert!(probe.starts_with("OK n="), "CRLF PROBE refused: {probe}");

    // The \r must be stripped before the delta grammar sees the line —
    // otherwise the trailing XML fragment fails to parse.
    let ack = client.request_crlf(&format!("INGEST insert /discs {fragment}"));
    assert!(
        ack.starts_with("OK ingested seq=2 "),
        "CRLF INGEST refused: {ack}"
    );

    // LF and CRLF clients interleave on one connection.
    let stats = client.request("STATS");
    assert!(stats.starts_with("OK seq=2 "), "bad stats: {stats}");
    assert_eq!(client.request_crlf("SHUTDOWN"), "OK bye");
    handle.join();
}

// ---- durability --------------------------------------------------------

/// A per-test, per-process scratch path for a write-ahead log.
fn temp_wal(name: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!(
        "dogmatixd-server-test-{}-{name}",
        std::process::id()
    ))
}

/// Boots a durable server over the CD fixture with a fresh WAL at
/// `wal_path`.
fn boot_cd_durable(
    n: usize,
    wal_path: &std::path::Path,
    config: ServerConfig,
) -> (ServerHandle, CdFixture, Dogmatix) {
    let fixture = CdFixture::dataset1(n);
    let dx = fixture.detector(HeuristicExpr::r_distant_descendants(2), false);
    let session = dx
        .incremental_session(fixture.doc.clone(), fixture.schema.clone(), CD_TYPE)
        .expect("open CD session");
    let wal = Wal::create(wal_path, &session, FsyncPolicy::Batch).expect("create WAL");
    let handle = serve_durable(
        fixture.detector(HeuristicExpr::r_distant_descendants(2), false),
        session,
        wal,
        config,
    )
    .expect("boot durable dogmatixd");
    (handle, fixture, dx)
}

fn remove_wal(wal_path: &std::path::Path) {
    let _ = std::fs::remove_file(wal_path);
    let mut ckpt = wal_path.as_os_str().to_os_string();
    ckpt.push(".ckpt");
    let _ = std::fs::remove_file(std::path::PathBuf::from(ckpt));
}

#[test]
fn shutdown_drains_queued_ingests_and_recovery_preserves_them() {
    let wal_path = temp_wal("drain.wal");
    let config = ServerConfig {
        workers: 6,
        blocking: qgram_blocking(),
        ..ServerConfig::default()
    };
    let (handle, fixture, dx) = boot_cd_durable(8, &wal_path, config);
    let fragments = candidate_fragments(&fixture.doc, "/discs/disc");
    let burst = 4;

    // Pile a burst of ingests into the queue from separate connections,
    // without reading any ack...
    let mut conns: Vec<Client> = (0..burst).map(|_| Client::connect(handle.addr())).collect();
    for (client, fragment) in conns.iter_mut().zip(&fragments) {
        client.fire(&format!("INGEST insert /discs {fragment}"));
    }
    // ...give the workers a moment to enqueue them, then race SHUTDOWN
    // against the non-empty queue.
    std::thread::sleep(Duration::from_millis(300));
    let mut boss = Client::connect(handle.addr());
    assert_eq!(boss.request("SHUTDOWN"), "OK bye");

    // Every queued delta was drained, committed, and acked — not
    // dropped by the shutdown.
    for client in &mut conns {
        let ack = client.read_reply();
        assert!(
            ack.starts_with("OK ingested seq="),
            "delta dropped at shutdown: {ack}"
        );
    }
    handle.join();

    // Recovery finds all acked deltas in the log...
    let rec = IncrementalSession::recover(
        &wal_path,
        &fixture.mapping,
        Some(fixture.schema.clone()),
        FsyncPolicy::Batch,
    )
    .expect("recover from drained WAL");
    assert_eq!(rec.report.checkpoint_lsn, 0, "unexpected checkpoint");
    assert_eq!(rec.report.replayed, burst, "acked deltas missing from log");
    assert_eq!(rec.report.skipped, 0);
    assert!(rec.report.dropped_tail.is_none(), "clean log reported torn");

    // ...and the recovered verdict counts equal a from-scratch batch
    // run over the grown corpus (the drain order of concurrent
    // connections is arbitrary, but verdict *counts* are order-free).
    let mut rec = rec;
    let recovered = dx
        .detect_delta(&mut rec.session, &[])
        .expect("detect on recovered session");
    let mut grown = fixture.doc.clone();
    for fragment in fragments.iter().take(burst) {
        let discs = grown.select("/discs").expect("select /discs")[0];
        grown.append_xml(discs, fragment).expect("apply ingest");
    }
    let batch = dx
        .run(&grown, &fixture.schema, CD_TYPE)
        .expect("batch run over grown corpus");
    assert_eq!(recovered.candidates.len(), batch.candidates.len());
    assert_eq!(
        recovered.duplicate_pairs.len(),
        batch.duplicate_pairs.len(),
        "recovered pair count diverges from batch"
    );
    assert_eq!(recovered.clusters.len(), batch.clusters.len());
    remove_wal(&wal_path);
}

#[test]
fn checkpoint_command_truncates_the_log_and_is_refused_without_a_wal() {
    // Without a WAL the command is a structured config error.
    let (handle, _fixture, _dx) = boot_cd(4, ServerConfig::default());
    let mut client = Client::connect(handle.addr());
    let resp = client.request("CHECKPOINT");
    assert!(
        resp.starts_with("ERR config:") && resp.contains("--wal"),
        "bad refusal: {resp}"
    );
    handle.shutdown();

    // With one: CHECKPOINT reports the covered LSN, and recovery
    // replays only what came after it.
    let wal_path = temp_wal("checkpoint.wal");
    let (handle, fixture, dx) = boot_cd_durable(
        6,
        &wal_path,
        ServerConfig {
            blocking: qgram_blocking(),
            ..ServerConfig::default()
        },
    );
    let fragments = candidate_fragments(&fixture.doc, "/discs/disc");
    let mut client = Client::connect(handle.addr());
    for fragment in fragments.iter().take(2) {
        let ack = client.request(&format!("INGEST insert /discs {fragment}"));
        assert!(ack.starts_with("OK ingested "), "bad ack: {ack}");
    }
    assert_eq!(client.request("CHECKPOINT"), "OK checkpoint lsn=2");
    let ack = client.request(&format!("INGEST insert /discs {}", fragments[2]));
    assert!(ack.starts_with("OK ingested "), "bad ack: {ack}");
    assert_eq!(client.request("SHUTDOWN"), "OK bye");
    handle.join();

    let mut rec = IncrementalSession::recover(
        &wal_path,
        &fixture.mapping,
        Some(fixture.schema.clone()),
        FsyncPolicy::Batch,
    )
    .expect("recover from checkpointed WAL");
    assert_eq!(rec.report.checkpoint_lsn, 2);
    assert_eq!(rec.report.replayed, 1, "only the post-checkpoint delta");
    let recovered = dx
        .detect_delta(&mut rec.session, &[])
        .expect("detect on recovered session");
    assert_eq!(recovered.candidates.len(), fragments.len() + 3);
    remove_wal(&wal_path);
}

// ---- INDEX-SAVE: exporting the live index as a paged snapshot ---------

#[test]
fn index_save_exports_a_paged_snapshot_the_point_reader_can_serve() {
    use dogmatix_repro::core::backend::paged::PagedReader;

    let (handle, fixture, _dx) = boot_cd(
        8,
        ServerConfig {
            workers: 2,
            blocking: qgram_blocking(),
            ..ServerConfig::default()
        },
    );
    let mut client = Client::connect(handle.addr());

    // No path is a protocol error, not a dropped connection.
    let resp = client.request("INDEX-SAVE");
    assert!(resp.starts_with("ERR protocol:"), "bad reply: {resp}");
    assert!(resp.contains("<path>"), "bad reply: {resp}");

    // Exporting after an ingest covers the *grown* corpus: the ingest
    // batch runs a detection, so the session is clean at the boundary
    // the INDEX-SAVE observes.
    let fragment = &candidate_fragments(&fixture.doc, "/discs/disc")[0];
    let ack = client.request(&format!("INGEST insert /discs {fragment}"));
    assert!(ack.starts_with("OK ingested "), "bad ack: {ack}");

    let out = std::env::temp_dir().join(format!(
        "dogmatixd-server-test-{}-index-save.dxts",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&out);
    let resp = client.request(&format!("INDEX-SAVE {}", out.display()));
    assert!(
        resp.starts_with("OK index-save bytes="),
        "bad reply: {resp}"
    );
    assert_eq!(client.request("SHUTDOWN"), "OK bye");
    handle.join();

    // The reported size is the installed file, the image is the paged
    // v2 format, and no temp file from the atomic install survives.
    let bytes: u64 = resp
        .split("bytes=")
        .nth(1)
        .and_then(|r| r.split_whitespace().next())
        .and_then(|n| n.parse().ok())
        .expect("parse bytes= from reply");
    let on_disk = std::fs::metadata(&out).expect("exported snapshot exists");
    assert_eq!(on_disk.len(), bytes, "reply size must match the file");
    let mut tmp = out.as_os_str().to_os_string();
    tmp.push(".tmp");
    assert!(
        !std::path::PathBuf::from(tmp).exists(),
        "atomic install must not leave a temp file"
    );

    // The export is a genuine out-of-core snapshot: the point reader
    // serves it under a budget far below the file size.
    let mut reader = PagedReader::open(&out, 4096).expect("open exported snapshot");
    assert!(reader.term_count() > 0, "exported index must have terms");
    for term in 0..reader.term_count().min(16) as u32 {
        let text = reader.term_text(term).expect("point-read term text");
        assert!(!text.is_empty(), "term {term} decoded empty");
        reader.postings(term).expect("point-read postings");
    }
    let _ = std::fs::remove_file(&out);
}
