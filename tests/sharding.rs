//! Differential suite for sharded pair-plan execution: for ANY corpus,
//! ANY comparison filter, and ANY shard count, the `ShardedDriver` must
//! produce a `DetectionResult` **bit-identical** to the unsharded
//! pipeline — same pairs, same similarity scores (f64 equality), same
//! clusters, same stats. Sharding partitions execution, never semantics.
//!
//! The number of property cases honours the `PROPTEST_CASES` environment
//! override (ci.sh sets it to 128; local runs default lower).

mod common;

use common::{build_doc, cases, record_strategy, MiniRecord};
use dogmatix_repro::core::filter::{MinHashLshBlocking, QGramBlocking};
use dogmatix_repro::core::neighborhood::{SortedNeighborhoodFilter, TopKBlocking};
use dogmatix_repro::core::pipeline::Dogmatix;
use dogmatix_repro::core::shard::ShardedDriver;
use dogmatix_repro::datagen::datasets::dataset1_sized;
use dogmatix_repro::eval::setup;
use dogmatix_repro::xml::Schema;
use proptest::prelude::*;

/// Shard counts the differential property checks: explicit 1, 2, 8 plus
/// auto (0 = available parallelism).
const SHARD_COUNTS: [usize; 4] = [1, 2, 8, 0];

// ---- corpus ----------------------------------------------------------

/// A corpus plus clone instructions, so generated documents contain real
/// duplicate pairs (otherwise most sharded work would score nothing).
fn corpus_strategy() -> impl Strategy<Value = Vec<MiniRecord>> {
    (
        proptest::collection::vec(record_strategy(), 3..9),
        proptest::collection::vec(0usize..16, 0..3),
    )
        .prop_map(|(mut records, clones)| {
            for c in clones {
                let copy = records[c % records.len()].clone();
                records.push(copy);
            }
            records
        })
}

// ---- detector matrix --------------------------------------------------

/// Every bundled comparison filter the driver must be neutral under.
const FILTERS: [FilterKind; 6] = [
    FilterKind::Object,
    FilterKind::NoFilter,
    FilterKind::TopK,
    FilterKind::SortedNeighborhood,
    FilterKind::QGram,
    FilterKind::Lsh,
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FilterKind {
    Object,
    NoFilter,
    TopK,
    SortedNeighborhood,
    QGram,
    Lsh,
}

/// A detector with the given filter stage; `shards = None` is the plain
/// unsharded pipeline, `Some(s)` routes execution through the driver.
fn detector(kind: FilterKind, theta_tuple: f64, shards: Option<usize>) -> Dogmatix {
    let mut b = Dogmatix::builder()
        .add_type("ITEM", ["/db/item"])
        .theta_tuple(theta_tuple)
        .threads(1);
    b = match kind {
        FilterKind::Object => b, // the paper-default object filter
        FilterKind::NoFilter => b.no_filter(),
        FilterKind::TopK => b.filter(TopKBlocking::new(2)),
        FilterKind::SortedNeighborhood => b.filter(SortedNeighborhoodFilter::new(3)),
        FilterKind::QGram => b.filter(QGramBlocking::new(2, theta_tuple)),
        FilterKind::Lsh => b.filter(MinHashLshBlocking::new(8, 2)),
    };
    if let Some(s) = shards {
        b = b.sharded(s);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(12)))]

    /// The centrepiece: under every filter, the driver at shard counts
    /// 1/2/8/auto reproduces the unsharded result bit for bit.
    #[test]
    fn sharded_execution_is_bit_identical_under_every_filter(
        records in corpus_strategy(),
        theta in 0.10f64..0.6,
    ) {
        let doc = build_doc(&records);
        let schema = Schema::infer(&doc).expect("non-empty docs infer");
        for kind in FILTERS {
            let baseline = detector(kind, theta, None)
                .run(&doc, &schema, "ITEM")
                .expect("unsharded pipeline runs");
            for shards in SHARD_COUNTS {
                let sharded = detector(kind, theta, Some(shards))
                    .run(&doc, &schema, "ITEM")
                    .expect("sharded pipeline runs");
                // Whole-result equality: candidates, ODs, filter values,
                // duplicate pairs with f64-equal scores, possible pairs,
                // clusters, and stats (pairs_compared included — the
                // driver executes the same plan).
                prop_assert_eq!(
                    &sharded, &baseline,
                    "filter {:?} shards {} diverged", kind, shards
                );
            }
        }
    }

    /// Partitioning is lossless and disjoint for any plan shape.
    #[test]
    fn partition_is_a_disjoint_cover(
        pairs in proptest::collection::vec((0usize..40, 0usize..40), 0..60),
        shards in 1usize..9,
    ) {
        let mut plan: Vec<(usize, usize)> = pairs
            .into_iter()
            .filter(|(i, j)| i != j)
            .map(|(i, j)| (i.min(j), i.max(j)))
            .collect();
        plan.sort_unstable();
        plan.dedup();
        let parts = ShardedDriver::new(shards).partition(&plan);
        prop_assert_eq!(parts.shards.len(), shards);
        prop_assert_eq!(parts.total_pairs(), plan.len());
        let mut covered: Vec<(usize, usize)> =
            parts.shards.iter().flatten().copied().collect();
        covered.extend(&parts.residual);
        covered.sort_unstable();
        let mut want = plan;
        want.sort_unstable();
        prop_assert_eq!(covered, want);
    }
}

// ---- directed cases ---------------------------------------------------

/// The seeded CD corpus through the paper-default detector: sharded
/// results must be bit-identical to unsharded at every shard count, and
/// the shard partition must actually split the work at shards > 1.
#[test]
fn cd_corpus_sharded_matches_unsharded() {
    let (doc, _) = dataset1_sized(7, 40);
    let schema = setup::cd_schema();
    let base_builder = || {
        Dogmatix::builder()
            .mapping(setup::cd_mapping())
            .theta_tuple(setup::THETA_TUPLE)
            .theta_cand(setup::THETA_CAND)
    };
    let baseline = base_builder()
        .build()
        .run(&doc, &schema, setup::CD_TYPE)
        .expect("unsharded runs");
    assert!(
        !baseline.duplicate_pairs.is_empty(),
        "the seeded corpus must contain detectable duplicates"
    );
    for shards in SHARD_COUNTS {
        let sharded = base_builder()
            .sharded(shards)
            .build()
            .run(&doc, &schema, setup::CD_TYPE)
            .expect("sharded runs");
        assert_eq!(sharded, baseline, "shards={shards}");
    }
    // The partition itself: multiple shards receive work, and the
    // residual holds the cross-shard pairs.
    let n = baseline.candidates.len();
    let plan: Vec<(usize, usize)> = (0..n)
        .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
        .collect();
    let parts = ShardedDriver::new(4).partition(&plan);
    assert!(parts.shards.iter().filter(|s| !s.is_empty()).count() >= 2);
    assert!(!parts.residual.is_empty());
    assert_eq!(parts.total_pairs(), plan.len());
}

/// Sharding composes with the blocking filters on the CD corpus (the
/// pair plan of each filter survives partitioning bit for bit).
#[test]
fn cd_corpus_blocking_filters_shard_cleanly() {
    let (doc, _) = dataset1_sized(3, 25);
    let schema = setup::cd_schema();
    for (name, filter) in [
        ("qgram", FilterKind::QGram),
        ("lsh", FilterKind::Lsh),
        ("topk", FilterKind::TopK),
        ("snm", FilterKind::SortedNeighborhood),
    ] {
        let build = |shards: Option<usize>| {
            let mut b = Dogmatix::builder()
                .mapping(setup::cd_mapping())
                .theta_tuple(setup::THETA_TUPLE)
                .theta_cand(setup::THETA_CAND);
            b = match filter {
                FilterKind::QGram => b.filter(QGramBlocking::new(2, setup::THETA_TUPLE)),
                FilterKind::Lsh => b.filter(MinHashLshBlocking::new(16, 2)),
                FilterKind::TopK => b.filter(TopKBlocking::new(3)),
                FilterKind::SortedNeighborhood => b.filter(SortedNeighborhoodFilter::new(4)),
                _ => unreachable!(),
            };
            if let Some(s) = shards {
                b = b.sharded(s);
            }
            b.build()
                .run(&doc, &schema, setup::CD_TYPE)
                .expect("pipeline runs")
        };
        let baseline = build(None);
        for shards in SHARD_COUNTS {
            assert_eq!(build(Some(shards)), baseline, "{name} shards={shards}");
        }
    }
}
