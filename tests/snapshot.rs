//! Differential + robustness suite for the persistent term-index
//! snapshot backend (`dogmatix_core::backend`):
//!
//! * **round trip** — build store → save → load → detection output
//!   bit-identical to the in-memory build, on the seeded CD and movie
//!   corpora, sequential and sharded;
//! * **robustness** — corrupted, truncated, and wrong-version snapshot
//!   files are rejected with a `DogmatixError::Snapshot` and never
//!   panic, for *every* byte position (flip) and prefix length
//!   (truncation) the property cases sample.
//!
//! The number of property cases honours the `PROPTEST_CASES` override
//! (ci.sh raises it to 128).

use dogmatix_repro::core::backend::SnapshotBackend;
use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::{DetectionResult, Dogmatix};
use dogmatix_repro::core::DogmatixError;
use dogmatix_repro::datagen::datasets::{dataset1_sized, dataset2_sized};
use dogmatix_repro::eval::setup;
use dogmatix_repro::xml::{Document, Schema};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dogmatix-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.index"))
}

struct Corpus {
    doc: Document,
    schema: Schema,
    mapping: dogmatix_repro::core::Mapping,
    rw_type: &'static str,
    heuristic: HeuristicExpr,
}

fn cd_corpus() -> Corpus {
    let (doc, _) = dataset1_sized(42, 50);
    Corpus {
        doc,
        schema: setup::cd_schema(),
        mapping: setup::cd_mapping(),
        rw_type: setup::CD_TYPE,
        heuristic: table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1),
    }
}

fn movie_corpus() -> Corpus {
    let (doc, _) = dataset2_sized(42, 30);
    let schema = setup::movie_schema(&doc);
    Corpus {
        doc,
        schema,
        mapping: setup::movie_mapping(),
        rw_type: setup::MOVIE_TYPE,
        heuristic: table4_heuristic(HeuristicExpr::r_distant_descendants(2), 1),
    }
}

fn detector(c: &Corpus, backend: Option<SnapshotBackend>, shards: Option<usize>) -> Dogmatix {
    let mut b = Dogmatix::builder()
        .mapping(c.mapping.clone())
        .heuristic(c.heuristic.clone())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND);
    if let Some(backend) = backend {
        b = b.index_backend(backend);
    }
    if let Some(shards) = shards {
        b = b.sharded(shards);
    }
    b.build()
}

fn run(c: &Corpus, backend: Option<SnapshotBackend>, shards: Option<usize>) -> DetectionResult {
    detector(c, backend, shards)
        .run(&c.doc, &c.schema, c.rw_type)
        .expect("detection runs")
}

#[test]
fn cd_and_movie_snapshot_roundtrips_are_bit_identical() {
    for (tag, corpus) in [("cd", cd_corpus()), ("movie", movie_corpus())] {
        let path = temp_path(tag);
        let in_memory = run(&corpus, None, None);
        let saved = run(&corpus, Some(SnapshotBackend::save(&path)), None);
        assert_eq!(in_memory, saved, "{tag}: save run must not change results");
        let loaded = run(&corpus, Some(SnapshotBackend::load(&path)), None);
        assert_eq!(in_memory, loaded, "{tag}: warm start must be bit-identical");
        assert!(
            !in_memory.duplicate_pairs.is_empty(),
            "{tag}: corpus contains duplicates"
        );
        // The snapshot path composes with sharded execution.
        for shards in [1usize, 2, 8, 0] {
            let sharded = run(&corpus, Some(SnapshotBackend::load(&path)), Some(shards));
            assert_eq!(
                in_memory, sharded,
                "{tag}: snapshot + {shards} shards diverged"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn snapshot_reload_across_detector_instances_matches() {
    // A fresh process would re-resolve candidates; simulate by loading
    // through a brand-new detector + session over a re-parsed document.
    let corpus = cd_corpus();
    let path = temp_path("reparse");
    let cold = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let reparsed = Corpus {
        doc: Document::parse(&corpus.doc.to_xml()).expect("roundtrip parse"),
        ..cd_corpus()
    };
    let warm = run(&reparsed, Some(SnapshotBackend::load(&path)), None);
    assert_eq!(cold.duplicate_pairs, warm.duplicate_pairs);
    assert_eq!(cold.clusters, warm.clusters);
    assert_eq!(cold.f_values, warm.f_values);
    assert_eq!(*cold.ods, *warm.ods);
    let _ = std::fs::remove_file(&path);
}

/// A reference snapshot built once for the corruption properties.
fn reference_snapshot() -> (Corpus, Vec<u8>) {
    let corpus = cd_corpus();
    let path = temp_path(&format!(
        "reference-{}",
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    let _ = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let bytes = std::fs::read(&path).expect("snapshot written");
    let _ = std::fs::remove_file(&path);
    (corpus, bytes)
}

/// Loading an arbitrary mutation of a valid snapshot must either fail
/// with a `DogmatixError` or succeed with the untouched result — never
/// panic, never return garbage.
fn assert_mutation_handled(
    corpus: &Corpus,
    original: &DetectionResult,
    mutated: &[u8],
    what: &str,
) {
    let path = temp_path(&format!(
        "mutated-{}",
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    std::fs::write(&path, mutated).expect("write mutated snapshot");
    let outcome = detector(corpus, Some(SnapshotBackend::load(&path)), None).run(
        &corpus.doc,
        &corpus.schema,
        corpus.rw_type,
    );
    let _ = std::fs::remove_file(&path);
    match outcome {
        Err(DogmatixError::Snapshot { .. }) => {}
        Err(other) => panic!("{what}: unexpected error kind {other}"),
        Ok(result) => assert_eq!(
            &result, original,
            "{what}: a mutation that loads must be a no-op mutation"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    #[test]
    fn corrupted_snapshots_never_panic(position in 0usize..100_000, byte in 0u8..=255) {
        let (corpus, bytes) = reference_snapshot();
        let original = run(&corpus, None, None);
        let mut mutated = bytes.clone();
        let pos = position % mutated.len();
        mutated[pos] = byte;
        assert_mutation_handled(&corpus, &original, &mutated, "byte flip");
    }

    #[test]
    fn truncated_snapshots_never_panic(cut in 0usize..100_000) {
        let (corpus, bytes) = reference_snapshot();
        let cut = cut % bytes.len();
        let truncated = &bytes[..cut];
        let path = temp_path(&format!(
            "truncated-{}",
            std::thread::current().name().unwrap_or("t").replace("::", "-")
        ));
        std::fs::write(&path, truncated).expect("write truncated snapshot");
        let outcome = detector(&corpus, Some(SnapshotBackend::load(&path)), None).run(
            &corpus.doc,
            &corpus.schema,
            corpus.rw_type,
        );
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            matches!(outcome, Err(DogmatixError::Snapshot { .. })),
            "truncation to {cut} bytes must be rejected"
        );
    }
}

#[test]
fn wrong_version_snapshots_are_rejected() {
    let (corpus, bytes) = reference_snapshot();
    for version in [0u32, 2, 7, u32::MAX] {
        let mut mutated = bytes.clone();
        mutated[4..8].copy_from_slice(&version.to_le_bytes());
        let path = temp_path("wrong-version");
        std::fs::write(&path, &mutated).expect("write");
        let err = detector(&corpus, Some(SnapshotBackend::load(&path)), None)
            .run(&corpus.doc, &corpus.schema, corpus.rw_type)
            .unwrap_err();
        let _ = std::fs::remove_file(&path);
        assert!(
            err.to_string().contains("version"),
            "version {version}: {err}"
        );
    }
}

#[test]
fn snapshot_against_a_mutated_corpus_is_rejected() {
    // Save against the 50-original corpus, load against a larger one:
    // the candidate count no longer matches.
    let corpus = cd_corpus();
    let path = temp_path("stale-corpus");
    let _ = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let (bigger_doc, _) = dataset1_sized(42, 60);
    let bigger = Corpus {
        doc: bigger_doc,
        ..cd_corpus()
    };
    let err = detector(&bigger, Some(SnapshotBackend::load(&path)), None)
        .run(&bigger.doc, &bigger.schema, bigger.rw_type)
        .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        matches!(err, DogmatixError::Snapshot { .. }),
        "stale snapshot must be rejected: {err}"
    );
}

#[test]
fn snapshot_against_edited_content_same_shape_is_rejected() {
    // An in-place value edit leaves the candidate count and selection
    // untouched — only the document-content fingerprint catches it.
    let corpus = cd_corpus();
    let path = temp_path("edited-content");
    let _ = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let xml = corpus.doc.to_xml();
    let needle = xml
        .match_indices("<artist>")
        .next()
        .map(|(i, _)| i)
        .expect("corpus has artists");
    let edited = format!(
        "{}<artist>Totally Edited Artist</artist>{}",
        &xml[..needle],
        &xml[needle..]
            .split_once("</artist>")
            .expect("closing tag")
            .1
    );
    let edited_corpus = Corpus {
        doc: Document::parse(&edited).expect("edited corpus parses"),
        ..cd_corpus()
    };
    let err = detector(&edited_corpus, Some(SnapshotBackend::load(&path)), None)
        .run(
            &edited_corpus.doc,
            &edited_corpus.schema,
            edited_corpus.rw_type,
        )
        .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        err.to_string().contains("different document content"),
        "same-shape content edit must be rejected: {err}"
    );
}
