//! Differential + robustness suite for the persistent term-index
//! snapshot backend (`dogmatix_core::backend`):
//!
//! * **round trip** — build store → save → load → detection output
//!   bit-identical to the in-memory build, on the seeded CD and movie
//!   corpora, sequential and sharded;
//! * **robustness** — corrupted, truncated, and wrong-version snapshot
//!   files are rejected with a `DogmatixError::Snapshot` and never
//!   panic, for *every* byte position (flip) and prefix length
//!   (truncation) the property cases sample.
//!
//! The number of property cases honours the `PROPTEST_CASES` override
//! (ci.sh raises it to 128).

use dogmatix_repro::core::backend::paged::{PagedBackend, PagedReader};
use dogmatix_repro::core::backend::{SnapshotBackend, TermIndexBackend};
use dogmatix_repro::core::heuristics::{table4_heuristic, HeuristicExpr};
use dogmatix_repro::core::pipeline::{DetectionResult, Dogmatix};
use dogmatix_repro::core::store::pool::{BlockId, BufferPool, PageSource};
use dogmatix_repro::core::DogmatixError;
use dogmatix_repro::datagen::datasets::{dataset1_sized, dataset2_sized};
use dogmatix_repro::eval::setup;
use dogmatix_repro::xml::{Document, Schema};
use proptest::prelude::*;
use std::path::PathBuf;

fn temp_path(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dogmatix-snapshot-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(format!("{tag}.index"))
}

struct Corpus {
    doc: Document,
    schema: Schema,
    mapping: dogmatix_repro::core::Mapping,
    rw_type: &'static str,
    heuristic: HeuristicExpr,
}

fn cd_corpus() -> Corpus {
    let (doc, _) = dataset1_sized(42, 50);
    Corpus {
        doc,
        schema: setup::cd_schema(),
        mapping: setup::cd_mapping(),
        rw_type: setup::CD_TYPE,
        heuristic: table4_heuristic(HeuristicExpr::k_closest_descendants(6), 1),
    }
}

fn movie_corpus() -> Corpus {
    let (doc, _) = dataset2_sized(42, 30);
    let schema = setup::movie_schema(&doc);
    Corpus {
        doc,
        schema,
        mapping: setup::movie_mapping(),
        rw_type: setup::MOVIE_TYPE,
        heuristic: table4_heuristic(HeuristicExpr::r_distant_descendants(2), 1),
    }
}

fn detector(c: &Corpus, backend: Option<SnapshotBackend>, shards: Option<usize>) -> Dogmatix {
    let mut b = Dogmatix::builder()
        .mapping(c.mapping.clone())
        .heuristic(c.heuristic.clone())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND);
    if let Some(backend) = backend {
        b = b.index_backend(backend);
    }
    if let Some(shards) = shards {
        b = b.sharded(shards);
    }
    b.build()
}

fn run(c: &Corpus, backend: Option<SnapshotBackend>, shards: Option<usize>) -> DetectionResult {
    detector(c, backend, shards)
        .run(&c.doc, &c.schema, c.rw_type)
        .expect("detection runs")
}

#[test]
fn cd_and_movie_snapshot_roundtrips_are_bit_identical() {
    for (tag, corpus) in [("cd", cd_corpus()), ("movie", movie_corpus())] {
        let path = temp_path(tag);
        let in_memory = run(&corpus, None, None);
        let saved = run(&corpus, Some(SnapshotBackend::save(&path)), None);
        assert_eq!(in_memory, saved, "{tag}: save run must not change results");
        let loaded = run(&corpus, Some(SnapshotBackend::load(&path)), None);
        assert_eq!(in_memory, loaded, "{tag}: warm start must be bit-identical");
        assert!(
            !in_memory.duplicate_pairs.is_empty(),
            "{tag}: corpus contains duplicates"
        );
        // The snapshot path composes with sharded execution.
        for shards in [1usize, 2, 8, 0] {
            let sharded = run(&corpus, Some(SnapshotBackend::load(&path)), Some(shards));
            assert_eq!(
                in_memory, sharded,
                "{tag}: snapshot + {shards} shards diverged"
            );
        }
        let _ = std::fs::remove_file(&path);
    }
}

#[test]
fn snapshot_reload_across_detector_instances_matches() {
    // A fresh process would re-resolve candidates; simulate by loading
    // through a brand-new detector + session over a re-parsed document.
    let corpus = cd_corpus();
    let path = temp_path("reparse");
    let cold = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let reparsed = Corpus {
        doc: Document::parse(&corpus.doc.to_xml()).expect("roundtrip parse"),
        ..cd_corpus()
    };
    let warm = run(&reparsed, Some(SnapshotBackend::load(&path)), None);
    assert_eq!(cold.duplicate_pairs, warm.duplicate_pairs);
    assert_eq!(cold.clusters, warm.clusters);
    assert_eq!(cold.f_values, warm.f_values);
    assert_eq!(*cold.ods, *warm.ods);
    let _ = std::fs::remove_file(&path);
}

/// A reference snapshot built once for the corruption properties.
fn reference_snapshot() -> (Corpus, Vec<u8>) {
    let corpus = cd_corpus();
    let path = temp_path(&format!(
        "reference-{}",
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    let _ = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let bytes = std::fs::read(&path).expect("snapshot written");
    let _ = std::fs::remove_file(&path);
    (corpus, bytes)
}

/// Loading an arbitrary mutation of a valid snapshot must either fail
/// with a `DogmatixError` or succeed with the untouched result — never
/// panic, never return garbage.
fn assert_mutation_handled(
    corpus: &Corpus,
    original: &DetectionResult,
    mutated: &[u8],
    what: &str,
) {
    let path = temp_path(&format!(
        "mutated-{}",
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    std::fs::write(&path, mutated).expect("write mutated snapshot");
    let outcome = detector(corpus, Some(SnapshotBackend::load(&path)), None).run(
        &corpus.doc,
        &corpus.schema,
        corpus.rw_type,
    );
    let _ = std::fs::remove_file(&path);
    match outcome {
        Err(DogmatixError::Snapshot { .. }) => {}
        Err(other) => panic!("{what}: unexpected error kind {other}"),
        Ok(result) => assert_eq!(
            &result, original,
            "{what}: a mutation that loads must be a no-op mutation"
        ),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    #[test]
    fn corrupted_snapshots_never_panic(position in 0usize..100_000, byte in 0u8..=255) {
        let (corpus, bytes) = reference_snapshot();
        let original = run(&corpus, None, None);
        let mut mutated = bytes.clone();
        let pos = position % mutated.len();
        mutated[pos] = byte;
        assert_mutation_handled(&corpus, &original, &mutated, "byte flip");
    }

    #[test]
    fn truncated_snapshots_never_panic(cut in 0usize..100_000) {
        let (corpus, bytes) = reference_snapshot();
        let cut = cut % bytes.len();
        let truncated = &bytes[..cut];
        let path = temp_path(&format!(
            "truncated-{}",
            std::thread::current().name().unwrap_or("t").replace("::", "-")
        ));
        std::fs::write(&path, truncated).expect("write truncated snapshot");
        let outcome = detector(&corpus, Some(SnapshotBackend::load(&path)), None).run(
            &corpus.doc,
            &corpus.schema,
            corpus.rw_type,
        );
        let _ = std::fs::remove_file(&path);
        prop_assert!(
            matches!(outcome, Err(DogmatixError::Snapshot { .. })),
            "truncation to {cut} bytes must be rejected"
        );
    }
}

#[test]
fn wrong_version_snapshots_are_rejected() {
    let (corpus, bytes) = reference_snapshot();
    for version in [0u32, 7, u32::MAX] {
        let mut mutated = bytes.clone();
        mutated[4..8].copy_from_slice(&version.to_le_bytes());
        let path = temp_path("wrong-version");
        std::fs::write(&path, &mutated).expect("write");
        let err = detector(&corpus, Some(SnapshotBackend::load(&path)), None)
            .run(&corpus.doc, &corpus.schema, corpus.rw_type)
            .unwrap_err();
        let _ = std::fs::remove_file(&path);
        // An unknown version names every version this build CAN read.
        let msg = err.to_string();
        assert!(msg.contains(&format!("version {version}")), "{msg}");
        assert!(msg.contains("version 1"), "{msg}");
        assert!(msg.contains("version 2"), "{msg}");
    }
    // Version 2 is real: relabelling a v1 image as paged routes it to
    // the paged parser, which rejects the impostor as corrupt rather
    // than misreading it.
    let mut mutated = bytes.clone();
    mutated[4..8].copy_from_slice(&2u32.to_le_bytes());
    let path = temp_path("forged-v2");
    std::fs::write(&path, &mutated).expect("write");
    let err = detector(&corpus, Some(SnapshotBackend::load(&path)), None)
        .run(&corpus.doc, &corpus.schema, corpus.rw_type)
        .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        matches!(err, DogmatixError::Snapshot { .. }),
        "forged v2 label must be rejected: {err}"
    );
}

#[test]
fn snapshot_against_a_mutated_corpus_is_rejected() {
    // Save against the 50-original corpus, load against a larger one:
    // the candidate count no longer matches.
    let corpus = cd_corpus();
    let path = temp_path("stale-corpus");
    let _ = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let (bigger_doc, _) = dataset1_sized(42, 60);
    let bigger = Corpus {
        doc: bigger_doc,
        ..cd_corpus()
    };
    let err = detector(&bigger, Some(SnapshotBackend::load(&path)), None)
        .run(&bigger.doc, &bigger.schema, bigger.rw_type)
        .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        matches!(err, DogmatixError::Snapshot { .. }),
        "stale snapshot must be rejected: {err}"
    );
}

#[test]
fn snapshot_against_edited_content_same_shape_is_rejected() {
    // An in-place value edit leaves the candidate count and selection
    // untouched — only the document-content fingerprint catches it.
    let corpus = cd_corpus();
    let path = temp_path("edited-content");
    let _ = run(&corpus, Some(SnapshotBackend::save(&path)), None);
    let xml = corpus.doc.to_xml();
    let needle = xml
        .match_indices("<artist>")
        .next()
        .map(|(i, _)| i)
        .expect("corpus has artists");
    let edited = format!(
        "{}<artist>Totally Edited Artist</artist>{}",
        &xml[..needle],
        &xml[needle..]
            .split_once("</artist>")
            .expect("closing tag")
            .1
    );
    let edited_corpus = Corpus {
        doc: Document::parse(&edited).expect("edited corpus parses"),
        ..cd_corpus()
    };
    let err = detector(&edited_corpus, Some(SnapshotBackend::load(&path)), None)
        .run(
            &edited_corpus.doc,
            &edited_corpus.schema,
            edited_corpus.rw_type,
        )
        .unwrap_err();
    let _ = std::fs::remove_file(&path);
    assert!(
        err.to_string().contains("different document content"),
        "same-shape content edit must be rejected: {err}"
    );
}

// ---- paged (v2) snapshots ---------------------------------------------

/// Like [`detector`] but over any backend — the paged tests plug in
/// [`PagedBackend`] where the flat tests use [`SnapshotBackend`].
fn detector_with(c: &Corpus, backend: impl TermIndexBackend + 'static) -> Dogmatix {
    Dogmatix::builder()
        .mapping(c.mapping.clone())
        .heuristic(c.heuristic.clone())
        .theta_tuple(setup::THETA_TUPLE)
        .theta_cand(setup::THETA_CAND)
        .index_backend(backend)
        .build()
}

/// A reference **paged** snapshot built once for the v2 corruption
/// properties, with small pages so the image spans many pages.
fn reference_paged_snapshot() -> (Corpus, Vec<u8>) {
    let corpus = cd_corpus();
    let path = temp_path(&format!(
        "paged-reference-{}",
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    detector_with(
        &corpus,
        PagedBackend::save(&path, 1 << 20).with_page_size(512),
    )
    .run(&corpus.doc, &corpus.schema, corpus.rw_type)
    .expect("paged save run");
    let bytes = std::fs::read(&path).expect("paged snapshot written");
    let _ = std::fs::remove_file(&path);
    (corpus, bytes)
}

/// A mutated v2 image must be rejected (or be a no-op mutation) by
/// BOTH readers: the budgeted [`PagedBackend`] and the
/// version-dispatching [`SnapshotBackend`].
fn assert_paged_mutation_handled(
    corpus: &Corpus,
    original: &DetectionResult,
    mutated: &[u8],
    what: &str,
) {
    let path = temp_path(&format!(
        "paged-mutated-{}",
        std::thread::current()
            .name()
            .unwrap_or("t")
            .replace("::", "-")
    ));
    std::fs::write(&path, mutated).expect("write mutated paged snapshot");
    for (reader, outcome) in [
        (
            "PagedBackend",
            detector_with(corpus, PagedBackend::open(&path, 1 << 20)).run(
                &corpus.doc,
                &corpus.schema,
                corpus.rw_type,
            ),
        ),
        (
            "SnapshotBackend",
            detector(corpus, Some(SnapshotBackend::load(&path)), None).run(
                &corpus.doc,
                &corpus.schema,
                corpus.rw_type,
            ),
        ),
    ] {
        match outcome {
            Err(DogmatixError::Snapshot { .. }) => {}
            Err(other) => panic!("{what} via {reader}: unexpected error kind {other}"),
            Ok(result) => assert_eq!(
                &result, original,
                "{what} via {reader}: a mutation that loads must be a no-op mutation"
            ),
        }
    }
    let _ = std::fs::remove_file(&path);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(24)
    ))]

    #[test]
    fn corrupted_paged_snapshots_never_panic(position in 0usize..1_000_000, byte in 0u8..=255) {
        let (corpus, bytes) = reference_paged_snapshot();
        let original = run(&corpus, None, None);
        let mut mutated = bytes.clone();
        let pos = position % mutated.len();
        mutated[pos] = byte;
        assert_paged_mutation_handled(&corpus, &original, &mutated, "paged byte flip");
    }

    #[test]
    fn truncated_paged_snapshots_never_panic(cut in 0usize..1_000_000) {
        let (corpus, bytes) = reference_paged_snapshot();
        let cut = cut % bytes.len();
        let original = run(&corpus, None, None);
        assert_paged_mutation_handled(&corpus, &original, &bytes[..cut], "paged truncation");
    }

    #[test]
    fn extended_paged_snapshots_never_panic(extra in 1usize..4096) {
        // Appended garbage changes no described byte — only the exact
        // file-length check can catch it.
        let (corpus, bytes) = reference_paged_snapshot();
        let original = run(&corpus, None, None);
        let mut padded = bytes.clone();
        padded.resize(bytes.len() + extra, 0xAB);
        assert_paged_mutation_handled(&corpus, &original, &padded, "paged padding");
    }
}

#[test]
fn every_data_page_is_checksum_protected() {
    // Flip one byte in EVERY page, one page at a time: the per-page
    // checksum table must name the corrupted block each time.
    let (corpus, bytes) = reference_paged_snapshot();
    let page_size = u32::from_le_bytes(bytes[8..12].try_into().unwrap()) as usize;
    let page_count = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    let header_len = u32::from_le_bytes(bytes[20..24].try_into().unwrap()) as usize;
    assert!(page_count > 4, "reference must span several pages");
    let path = temp_path("paged-per-page");
    for page in 0..page_count {
        let mut mutated = bytes.clone();
        mutated[header_len + page * page_size] ^= 0x01;
        std::fs::write(&path, &mutated).expect("write");
        let err = detector_with(&corpus, PagedBackend::open(&path, 1 << 20))
            .run(&corpus.doc, &corpus.schema, corpus.rw_type)
            .unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("checksum mismatch on block"),
            "page {page}: {msg}"
        );
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn cross_version_loads_fail_naming_both_versions() {
    let (corpus, v1_bytes) = reference_snapshot();
    let (_, v2_bytes) = reference_paged_snapshot();
    let path = temp_path("cross-version");

    // A flat v1 file through the paged-only readers.
    std::fs::write(&path, &v1_bytes).expect("write v1");
    let err = detector_with(&corpus, PagedBackend::open(&path, 1 << 20))
        .run(&corpus.doc, &corpus.schema, corpus.rw_type)
        .unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("flat format (version 1)"), "{msg}");
    assert!(msg.contains("version 2"), "{msg}");
    assert!(
        msg.contains("SnapshotBackend"),
        "points at the right reader: {msg}"
    );
    let err = PagedReader::open(&path, 1 << 20).unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("flat format (version 1)"), "{msg}");
    assert!(msg.contains("version 2"), "{msg}");

    // A paged v2 file through the version-dispatching flat backend
    // LOADS (compat), bit-identical to the in-memory run.
    std::fs::write(&path, &v2_bytes).expect("write v2");
    let original = run(&corpus, None, None);
    let compat = detector(&corpus, Some(SnapshotBackend::load(&path)), None)
        .run(&corpus.doc, &corpus.schema, corpus.rw_type)
        .expect("SnapshotBackend reads v2");
    assert_eq!(original, compat, "v2-via-SnapshotBackend diverged");
    let _ = std::fs::remove_file(&path);
}

#[test]
fn failed_saves_leave_the_previous_snapshot_intact() {
    // Satellite regression: a save that dies mid-write (simulated by a
    // directory squatting on the temp-file name) must not clobber the
    // previously installed snapshot — for the flat AND paged writers.
    let corpus = cd_corpus();
    let original = run(&corpus, None, None);
    for paged in [false, true] {
        let tag = if paged { "atomic-paged" } else { "atomic-flat" };
        let path = temp_path(tag);
        let save_ok = if paged {
            detector_with(&corpus, PagedBackend::save(&path, 1 << 20)).run(
                &corpus.doc,
                &corpus.schema,
                corpus.rw_type,
            )
        } else {
            detector(&corpus, Some(SnapshotBackend::save(&path)), None).run(
                &corpus.doc,
                &corpus.schema,
                corpus.rw_type,
            )
        };
        save_ok.expect("initial save");
        let good = std::fs::read(&path).expect("snapshot installed");

        let mut tmp = path.as_os_str().to_os_string();
        tmp.push(".tmp");
        let tmp = PathBuf::from(tmp);
        std::fs::create_dir_all(&tmp).expect("squat temp name");
        let err = if paged {
            detector_with(&corpus, PagedBackend::save(&path, 1 << 20))
                .run(&corpus.doc, &corpus.schema, corpus.rw_type)
                .unwrap_err()
        } else {
            detector(&corpus, Some(SnapshotBackend::save(&path)), None)
                .run(&corpus.doc, &corpus.schema, corpus.rw_type)
                .unwrap_err()
        };
        assert!(
            matches!(err, DogmatixError::Snapshot { .. }),
            "{tag}: {err}"
        );
        assert_eq!(
            std::fs::read(&path).expect("previous snapshot survives"),
            good,
            "{tag}: failed save must not touch the installed file"
        );
        std::fs::remove_dir_all(&tmp).expect("clear squat");

        // And the surviving file still warm-starts bit-identically.
        let warm = if paged {
            detector_with(&corpus, PagedBackend::open(&path, 1 << 20)).run(
                &corpus.doc,
                &corpus.schema,
                corpus.rw_type,
            )
        } else {
            detector(&corpus, Some(SnapshotBackend::load(&path)), None).run(
                &corpus.doc,
                &corpus.schema,
                corpus.rw_type,
            )
        }
        .expect("surviving snapshot loads");
        assert_eq!(original, warm, "{tag}: surviving snapshot diverged");
        assert!(!tmp.exists(), "{tag}: temp artefact left behind");
        let _ = std::fs::remove_file(&path);
    }
}

// ---- buffer-pool properties -------------------------------------------

/// A deterministic in-memory page source: page `i` carries bytes
/// derived from `i`, so any mix-up of frames is visible in the data.
#[derive(Debug)]
struct VecSource {
    page_size: usize,
    page_count: u32,
}

impl VecSource {
    fn expected(&self, block: u32) -> Vec<u8> {
        (0..self.page_size)
            .map(|j| (block as usize).wrapping_mul(31).wrapping_add(j) as u8)
            .collect()
    }
}

impl PageSource for VecSource {
    fn page_size(&self) -> usize {
        self.page_size
    }
    fn page_count(&self) -> u32 {
        self.page_count
    }
    fn read_page(&mut self, block: BlockId, buf: &mut [u8]) -> Result<(), DogmatixError> {
        buf.copy_from_slice(&self.expected(block.0));
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(
        std::env::var("PROPTEST_CASES").ok().and_then(|v| v.parse().ok()).unwrap_or(64)
    ))]

    /// Random access patterns keep pins balanced, the pool within its
    /// budget, and every pinned page's bytes exactly its source page.
    #[test]
    fn pool_pins_balance_and_pages_stay_intact(
        page_count in 2u32..40,
        capacity in 1usize..8,
        accesses in proptest::collection::vec(0u32..40, 1..200),
    ) {
        let page_size = 64;
        let source = VecSource { page_size, page_count };
        let expected: Vec<Vec<u8>> = (0..page_count).map(|b| source.expected(b)).collect();
        let mut pool = BufferPool::new(Box::new(source), capacity * page_size)
            .expect("pool admits at least one frame");
        let mut held = std::collections::VecDeque::new();
        for block in accesses {
            let block = BlockId(block % page_count);
            // Never hold more refs than frames: release the oldest
            // first, like a scan cursor would.
            if held.len() == pool.capacity_frames() {
                pool.unpin(held.pop_front().expect("held page"));
            }
            let page = pool.pin(block).expect("pin within capacity");
            prop_assert_eq!(
                pool.data(&page),
                expected[block.0 as usize].as_slice(),
                "page bytes must match the source page"
            );
            held.push_back(page);
            let s = pool.stats();
            prop_assert_eq!(s.pins - s.unpins, held.len() as u64, "pins balance held refs");
            prop_assert!(
                s.resident_bytes <= capacity * page_size,
                "resident {} exceeds budget {}", s.resident_bytes, capacity * page_size
            );
        }
        for page in held.drain(..) {
            pool.unpin(page);
        }
        let s = pool.stats();
        prop_assert_eq!(s.pins, s.unpins, "all pins released");
        prop_assert!(s.peak_resident_bytes <= capacity * page_size);
        prop_assert!(pool.resident_pages() <= pool.capacity_frames());
    }

    /// A full pool refuses new pins rather than evicting a pinned
    /// frame, and the refusal names the exhaustion; releasing one pin
    /// un-wedges it without disturbing the surviving pins.
    #[test]
    fn pool_never_evicts_a_pinned_frame(capacity in 1usize..6, extra in 1u32..6) {
        let page_size = 64;
        let page_count = capacity as u32 + extra;
        let source = VecSource { page_size, page_count };
        let expected: Vec<Vec<u8>> = (0..page_count).map(|b| source.expected(b)).collect();
        let mut pool = BufferPool::new(Box::new(source), capacity * page_size)
            .expect("pool admits at least one frame");
        let mut held: Vec<_> = (0..capacity as u32)
            .map(|b| pool.pin(BlockId(b)).expect("fill the pool"))
            .collect();
        let err = pool.pin(BlockId(capacity as u32)).expect_err("pool is wedged");
        prop_assert!(err.to_string().contains("frames pinned"), "{}", err);
        // Every pinned page survived the refused eviction untouched.
        for (b, page) in held.iter().enumerate() {
            prop_assert_eq!(pool.data(page), expected[b].as_slice());
        }
        // One release frees exactly one frame — the evicted page is the
        // released one, never one of the still-pinned survivors.
        pool.unpin(held.remove(0));
        let newcomer = pool.pin(BlockId(capacity as u32)).expect("unpin un-wedges the pool");
        prop_assert_eq!(pool.data(&newcomer), expected[capacity].as_slice());
        for (i, page) in held.iter().enumerate() {
            prop_assert_eq!(pool.data(page), expected[i + 1].as_slice());
        }
        pool.unpin(newcomer);
        for page in held.drain(..) {
            pool.unpin(page);
        }
        let s = pool.stats();
        prop_assert_eq!(s.pins, s.unpins);
    }
}
