//! Corruption matrix for the write-ahead delta log
//! (`dogmatix_core::wal`):
//!
//! * **frame fields** — a byte flip in *every* field class of every
//!   frame (magic, LSN, length, payload, checksum) makes recovery stop
//!   at the last valid frame, report the tear as a structured
//!   `DogmatixError::Wal`, and never panic;
//! * **truncation** — a cut at any point inside a frame drops exactly
//!   that frame and everything after it; a cut at a frame boundary is
//!   a clean end, not a tear;
//! * **headers** — a corrupt log header or checkpoint sidecar is fatal
//!   (`Err`, not a silent empty recovery);
//! * **properties** — arbitrary byte flips and cuts over the whole
//!   log/checkpoint byte range, honouring the `PROPTEST_CASES`
//!   override (ci.sh raises it to 128).
//!
//! The prefix assertions are differential: after recovering a log with
//! frame `k` torn, the session's verdicts must be bit-identical to an
//! uninterrupted control session fed only the first `k` deltas.

mod common;

use common::{build_doc, cases, MiniRecord};
use dogmatix_repro::core::incremental::{DocumentDelta, IncrementalSession};
use dogmatix_repro::core::pipeline::{DetectionResult, Dogmatix};
use dogmatix_repro::core::wal::{FsyncPolicy, Wal};
use dogmatix_repro::core::DogmatixError;
use proptest::prelude::*;
use std::path::{Path, PathBuf};

const LOG_HEADER_LEN: usize = 8;
const FRAME_HEADER_LEN: usize = 16;

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dogmatix-wal-tests-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// Unique scratch log path (proptest cases must not share files).
fn scratch_log(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static SEQ: AtomicUsize = AtomicUsize::new(0);
    let n = SEQ.fetch_add(1, Ordering::Relaxed);
    temp_dir().join(format!("{tag}-{n}.wal"))
}

fn ckpt_path(log: &Path) -> PathBuf {
    let mut name = log.as_os_str().to_os_string();
    name.push(".ckpt");
    PathBuf::from(name)
}

fn remove_log(log: &Path) {
    let _ = std::fs::remove_file(log);
    let _ = std::fs::remove_file(ckpt_path(log));
}

fn detector() -> Dogmatix {
    Dogmatix::builder()
        .add_type("ITEM", ["/db/item"])
        .theta_tuple(0.3)
        .no_filter()
        .build()
}

fn seed_records() -> Vec<MiniRecord> {
    (0..4)
        .map(|i| MiniRecord {
            title: format!("seed title {i}"),
            year: 1990 + i,
            names: vec![format!("Person{i}")],
        })
        .collect()
}

fn seed_deltas() -> Vec<DocumentDelta> {
    vec![
        // A planted duplicate of item 0.
        DocumentDelta::InsertXml {
            parent_path: "/db".into(),
            xml: "<item><title>seed title 0</title><year>1990</year>\
                  <person><name>Person0</name></person></item>"
                .into(),
        },
        DocumentDelta::UpdateText {
            index: 1,
            path: "title".into(),
            occurrence: 0,
            value: "retitled mid stream".into(),
        },
        DocumentDelta::RemoveObject { index: 2 },
    ]
}

/// The valid reference artefacts: the committed log and checkpoint
/// bytes after all three deltas, plus the control verdicts after each
/// prefix of the delta stream (`prefixes[k]` = verdicts with only the
/// first `k` deltas applied).
fn reference() -> (Vec<u8>, Vec<u8>, Vec<DetectionResult>) {
    let dx = detector();
    let deltas = seed_deltas();
    let path = scratch_log("reference");
    let mut s = dx
        .incremental_session_inferred(build_doc(&seed_records()), "ITEM")
        .expect("session opens");
    let mut wal = Wal::create(&path, &s, FsyncPolicy::Batch).expect("create WAL");
    for delta in &deltas {
        wal.append(delta).expect("append");
        dx.detect_delta(&mut s, std::slice::from_ref(delta))
            .expect("delta applies");
    }
    wal.commit().expect("commit");
    drop(wal);
    let log = std::fs::read(&path).expect("log written");
    let ckpt = std::fs::read(ckpt_path(&path)).expect("checkpoint written");
    remove_log(&path);

    let prefixes = (0..=deltas.len())
        .map(|k| {
            let mut control = dx
                .incremental_session_inferred(build_doc(&seed_records()), "ITEM")
                .expect("control opens");
            dx.detect_delta(&mut control, &[]).expect("initial run");
            dx.detect_delta(&mut control, &deltas[..k])
                .expect("control prefix applies")
        })
        .collect();
    (log, ckpt, prefixes)
}

/// Byte offsets of each frame and its payload length, parsed straight
/// off the reference log bytes.
fn frame_offsets(log: &[u8]) -> Vec<(usize, usize)> {
    let mut frames = Vec::new();
    let mut at = LOG_HEADER_LEN;
    while at + FRAME_HEADER_LEN <= log.len() {
        let len = u32::from_le_bytes(log[at + 12..at + 16].try_into().expect("len bytes")) as usize;
        frames.push((at, len));
        at += FRAME_HEADER_LEN + len + 8;
    }
    assert_eq!(at, log.len(), "reference log has trailing garbage");
    frames
}

/// Writes the given log + checkpoint bytes to a scratch path and runs
/// recovery over them.
fn recover_bytes(
    tag: &str,
    log: &[u8],
    ckpt: &[u8],
) -> Result<dogmatix_repro::core::wal::Recovery, DogmatixError> {
    let path = scratch_log(tag);
    std::fs::write(&path, log).expect("write log");
    std::fs::write(ckpt_path(&path), ckpt).expect("write checkpoint");
    let outcome =
        IncrementalSession::recover(&path, detector().mapping(), None, FsyncPolicy::Batch);
    remove_log(&path);
    outcome
}

/// Asserts a recovery stopped after exactly `valid` replayed deltas and
/// that its verdicts are bit-identical to the control prefix.
fn assert_prefix(
    rec: dogmatix_repro::core::wal::Recovery,
    valid: usize,
    prefixes: &[DetectionResult],
    torn: bool,
    what: &str,
) {
    assert_eq!(
        rec.report.replayed + rec.report.skipped,
        valid,
        "{what}: wrong replay count"
    );
    match (&rec.report.dropped_tail, torn) {
        (Some(DogmatixError::Wal { .. }), true) => {}
        (Some(other), true) => panic!("{what}: tear reported as {other}"),
        (Some(e), false) => panic!("{what}: clean log reported torn: {e}"),
        (None, true) => panic!("{what}: tear not reported"),
        (None, false) => {}
    }
    let mut session = rec.session;
    let dx = detector();
    let after = dx
        .detect_delta(&mut session, &[])
        .unwrap_or_else(|e| panic!("{what}: post-recovery detect failed: {e}"));
    // Everything but `stats.pairs_compared` must be bit-identical (the
    // control replays its pair cache; a recovered session re-scores).
    let expect = &prefixes[valid];
    assert_eq!(after.candidates, expect.candidates, "candidates: {what}");
    assert_eq!(*after.ods, *expect.ods, "object descriptions: {what}");
    assert_eq!(after.f_values, expect.f_values, "filter values: {what}");
    assert_eq!(after.pruned, expect.pruned, "pruned flags: {what}");
    assert_eq!(
        after.duplicate_pairs, expect.duplicate_pairs,
        "duplicate pairs: {what}"
    );
    assert_eq!(
        after.possible_pairs, expect.possible_pairs,
        "possible pairs: {what}"
    );
    assert_eq!(after.clusters, expect.clusters, "clusters: {what}");
    assert_eq!(after.stats.candidates, expect.stats.candidates, "{what}");
}

// ---- the directed matrix ----------------------------------------------

#[test]
fn byte_flips_in_every_frame_field_drop_the_tail_at_the_last_valid_frame() {
    let (log, ckpt, prefixes) = reference();
    let frames = frame_offsets(&log);
    assert_eq!(frames.len(), 3, "reference log holds three frames");
    for (k, &(start, payload_len)) in frames.iter().enumerate() {
        let fields = [
            ("magic", start),
            ("lsn", start + 4),
            ("length", start + 12),
            ("payload", start + FRAME_HEADER_LEN),
            ("checksum", start + FRAME_HEADER_LEN + payload_len),
        ];
        for (field, offset) in fields {
            let mut mutated = log.clone();
            mutated[offset] ^= 0xFF;
            let what = format!("{field} flip in frame {k}");
            let rec = recover_bytes("field-flip", &mutated, &ckpt)
                .unwrap_or_else(|e| panic!("{what}: torn tail must not be fatal: {e}"));
            assert_prefix(rec, k, &prefixes, true, &what);
        }
    }
}

#[test]
fn mid_frame_truncations_drop_the_tail_and_boundary_cuts_are_clean() {
    let (log, ckpt, prefixes) = reference();
    let frames = frame_offsets(&log);
    for (k, &(start, payload_len)) in frames.iter().enumerate() {
        // A cut exactly at the frame boundary is a clean end-of-log.
        let rec =
            recover_bytes("boundary-cut", &log[..start], &ckpt).expect("boundary cut must recover");
        assert_prefix(rec, k, &prefixes, false, &format!("cut at frame {k} start"));

        // Cuts inside the frame header, payload, and checksum all tear.
        for (where_, cut) in [
            ("header", start + 3),
            ("payload", start + FRAME_HEADER_LEN + payload_len / 2),
            ("checksum", start + FRAME_HEADER_LEN + payload_len + 4),
        ] {
            let what = format!("cut mid-{where_} of frame {k}");
            let rec = recover_bytes("mid-cut", &log[..cut], &ckpt)
                .unwrap_or_else(|e| panic!("{what}: torn tail must not be fatal: {e}"));
            assert_prefix(rec, k, &prefixes, true, &what);
        }
    }
}

#[test]
fn corrupt_log_headers_and_checkpoints_are_fatal() {
    let (log, ckpt, _) = reference();

    // Every byte of the log header is load-bearing (magic + version).
    for offset in 0..LOG_HEADER_LEN {
        let mut mutated = log.clone();
        mutated[offset] ^= 0xFF;
        let err = recover_bytes("bad-log-header", &mutated, &ckpt)
            .expect_err("corrupt log header must be fatal");
        assert!(
            matches!(err, DogmatixError::Wal { .. }),
            "log header byte {offset}: wrong kind {err}"
        );
    }

    // Checkpoint corruption: flips across the sidecar and truncations.
    for offset in [0, 4, 8, 16, ckpt.len() / 2, ckpt.len() - 1] {
        let mut mutated = ckpt.clone();
        mutated[offset] ^= 0xFF;
        let err = recover_bytes("bad-ckpt", &log, &mutated)
            .expect_err("corrupt checkpoint must be fatal");
        assert!(
            matches!(err, DogmatixError::Wal { .. }),
            "checkpoint byte {offset}: wrong kind {err}"
        );
    }
    for cut in [0, 7, ckpt.len() / 2, ckpt.len() - 1] {
        let err = recover_bytes("cut-ckpt", &log, &ckpt[..cut])
            .expect_err("truncated checkpoint must be fatal");
        assert!(
            matches!(err, DogmatixError::Wal { .. }),
            "checkpoint cut {cut}: wrong kind {err}"
        );
    }

    // A missing checkpoint sidecar is fatal too.
    let path = scratch_log("no-ckpt");
    std::fs::write(&path, &log).expect("write log");
    let err = IncrementalSession::recover(&path, detector().mapping(), None, FsyncPolicy::Batch)
        .expect_err("missing checkpoint must be fatal");
    remove_log(&path);
    assert!(matches!(err, DogmatixError::Wal { .. }), "wrong kind {err}");
}

// ---- the properties ----------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(cases(24)))]

    /// Any single byte flip anywhere in the log: recovery either keeps
    /// a valid prefix (flip in a frame, or a no-op flip) or fails with
    /// a structured error (flip in the header) — and a kept prefix's
    /// verdicts always match the control for that many deltas.
    #[test]
    fn corrupted_logs_never_panic(position in 0usize..100_000, byte in 0u8..=255) {
        let (log, ckpt, prefixes) = reference();
        let mut mutated = log.clone();
        let pos = position % mutated.len();
        mutated[pos] = byte;
        let changed = mutated[pos] != log[pos];
        match recover_bytes("prop-flip", &mutated, &ckpt) {
            Ok(rec) => {
                let valid = rec.report.replayed + rec.report.skipped;
                prop_assert!(valid < prefixes.len());
                if !changed {
                    prop_assert_eq!(valid, prefixes.len() - 1, "no-op flip lost deltas");
                }
                assert_prefix(rec, valid, &prefixes, changed && valid < prefixes.len() - 1,
                    &format!("flip at {pos}"));
            }
            Err(DogmatixError::Wal { .. }) => prop_assert!(changed, "no-op flip was fatal"),
            Err(other) => prop_assert!(false, "unstructured failure: {}", other),
        }
    }

    /// Any truncation length: the valid prefix survives, cuts inside
    /// the log header are fatal, and nothing panics.
    #[test]
    fn truncated_logs_never_panic(cut in 0usize..100_000) {
        let (log, ckpt, prefixes) = reference();
        let cut = cut % (log.len() + 1);
        match recover_bytes("prop-cut", &log[..cut], &ckpt) {
            Ok(rec) => {
                let valid = rec.report.replayed + rec.report.skipped;
                prop_assert!(valid < prefixes.len());
                assert_prefix(rec, valid, &prefixes,
                    rec_cut_tears(&log, cut), &format!("cut at {cut}"));
            }
            // A cut inside the 8-byte header (or to zero) may be fatal.
            Err(DogmatixError::Wal { .. }) => prop_assert!(cut < log.len(), "full log was fatal"),
            Err(other) => prop_assert!(false, "unstructured failure: {}", other),
        }
    }

    /// Any single byte flip in the checkpoint sidecar: recovery either
    /// rejects it with a structured error or (no-op flip) recovers in
    /// full — never panics, never loads garbage.
    #[test]
    fn corrupted_checkpoints_never_panic(position in 0usize..100_000, byte in 0u8..=255) {
        let (log, ckpt, prefixes) = reference();
        let mut mutated = ckpt.clone();
        let pos = position % mutated.len();
        mutated[pos] = byte;
        let changed = mutated[pos] != ckpt[pos];
        match recover_bytes("prop-ckpt", &log, &mutated) {
            Ok(rec) => {
                prop_assert!(!changed, "a changed checkpoint byte must not load");
                assert_prefix(rec, prefixes.len() - 1, &prefixes, false, "no-op ckpt flip");
            }
            Err(DogmatixError::Wal { .. }) => prop_assert!(changed, "no-op flip was fatal"),
            Err(other) => prop_assert!(false, "unstructured failure: {}", other),
        }
    }
}

/// Whether cutting the reference log at `cut` bytes lands *inside* a
/// frame (a tear) rather than on a frame boundary (a clean end).
fn rec_cut_tears(log: &[u8], cut: usize) -> bool {
    // Zero bytes is the documented valid-empty log (the crash window
    // inside `Wal::create`), and the full length is simply untruncated.
    if cut == 0 || cut >= log.len() {
        return false;
    }
    !frame_offsets(log).iter().any(|&(start, _)| start == cut)
}
