//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface the workspace benches use — `black_box`,
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkGroup`] with `sample_size`/`throughput`/`bench_with_input`,
//! [`BenchmarkId`], [`Throughput`], and the `criterion_group!` /
//! `criterion_main!` macros — backed by a simple wall-clock harness:
//! each benchmark is warmed up once, then timed over a fixed number of
//! samples, and the per-iteration median/min/max are printed. No
//! statistics, plots, or baseline comparisons; swap in the real crate
//! for serious measurement work.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Opaque value barrier (re-export of `std::hint::black_box`).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation; recorded and echoed, not analysed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// A benchmark identifier, printable as `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    pub fn new(function: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// Id carrying only the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.id.fmt(f)
    }
}

/// Times closures handed to it by a benchmark body.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `f` once as warm-up, then `sample_count` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// The top-level harness handle.
pub struct Criterion {
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_count: 10 }
    }
}

impl Criterion {
    /// Runs a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&name.to_string(), self.sample_count, None, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        let sample_count = self.sample_count;
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
            sample_count,
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_count: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(1);
        self
    }

    /// Records the per-iteration throughput for reporting.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_count,
            self.throughput,
            f,
        );
        self
    }

    /// Runs one parameterised benchmark inside the group.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(
            &format!("{}/{id}", self.name),
            self.sample_count,
            self.throughput,
            |b| f(b, input),
        );
        self
    }

    /// Ends the group (no-op; kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_count: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_count,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<50} (no samples — bencher.iter never called)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = bencher.samples[bencher.samples.len() - 1];
    let extra = match throughput {
        Some(Throughput::Bytes(b)) => {
            let gib = b as f64 / median.as_secs_f64() / (1u64 << 30) as f64;
            format!("  {gib:8.3} GiB/s")
        }
        Some(Throughput::Elements(e)) => {
            let meps = e as f64 / median.as_secs_f64() / 1e6;
            format!("  {meps:8.3} Melem/s")
        }
        None => String::new(),
    };
    println!("{name:<50} median {median:>12?}  (min {min:?}, max {max:?}){extra}");
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Generates `main` running the given groups (for `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes `--bench`; `cargo test --benches` would
            // pass `--test` expecting a no-op. Honour the latter.
            if std::env::args().any(|a| a == "--test") {
                return;
            }
            $( $group(); )+
        }
    };
}
