//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of the proptest 1.x API the workspace's property
//! tests use:
//!
//! * the [`Strategy`] trait with `prop_map`, plus strategies for integer
//!   and float ranges, tuples, [`strategy::Just`], weighted unions
//!   ([`prop_oneof!`]), vectors ([`collection::vec`]), and a regex-subset
//!   string generator ([`string::string_regex`]);
//! * the [`proptest!`] macro with `#![proptest_config(...)]` support;
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!`.
//!
//! Differences from real proptest, deliberately accepted: cases are
//! generated from a fixed per-test seed (fully deterministic run to run),
//! and failing inputs are *not* shrunk — the panic message carries the
//! case number so a failure is still reproducible.

pub mod test_runner {
    //! Test configuration and the deterministic RNG behind generation.

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases each property runs.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// SplitMix64 generator seeded from the property's name: deterministic
    /// across runs, different across properties.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds from an arbitrary string (FNV-1a of the test name).
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "below(0)");
            self.next_u64() % bound
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use crate::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    ///
    /// Unlike real proptest there is no value tree / shrinking: a strategy
    /// simply produces a value from an RNG.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Weighted choice between strategies of a common value type.
    pub struct Union<T> {
        options: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; weights must not all be zero.
        pub fn new_weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
            let total_weight = options.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs a positive weight");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let mut pick = rng.below(self.total_weight);
            for (weight, strat) in &self.options {
                if pick < *weight as u64 {
                    return strat.generate(rng);
                }
                pick -= *weight as u64;
            }
            unreachable!("weights sum to total_weight")
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128) % span;
                    (self.start as i128 + offset as i128) as $t
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u128 + 1;
                    let offset = (rng.next_u64() as u128) % span;
                    (start as i128 + offset as i128) as $t
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Generates `Vec`s whose length is drawn from `size` and whose
    /// elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { element, size }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod string {
    //! Regex-driven string generation for the subset of regex syntax the
    //! workspace's tests use: literal chars, `[...]` classes with ranges,
    //! groups, and the `?`, `*`, `+`, `{m}`, `{m,n}` quantifiers.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Error for patterns outside the supported subset.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct Error(pub String);

    impl std::fmt::Display for Error {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "unsupported regex: {}", self.0)
        }
    }

    impl std::error::Error for Error {}

    /// An atom with its `(min, max)` repetition bounds.
    type Rep = (Node, u32, u32);

    /// One parsed regex atom plus its repetition bounds.
    #[derive(Debug, Clone)]
    enum Node {
        /// A set of candidate chars (from a class or a literal).
        Class(Vec<char>),
        /// A grouped sub-sequence.
        Group(Vec<Rep>),
    }

    /// Compiles `pattern` into a string strategy.
    pub fn string_regex(pattern: &str) -> Result<RegexStrategy, Error> {
        let chars: Vec<char> = pattern.chars().collect();
        let (seq, consumed) = parse_seq(&chars, 0, pattern)?;
        if consumed != chars.len() {
            return Err(Error(format!("trailing input in {pattern:?}")));
        }
        Ok(RegexStrategy { seq })
    }

    /// See [`string_regex`].
    pub struct RegexStrategy {
        seq: Vec<Rep>,
    }

    impl Strategy for RegexStrategy {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            let mut out = String::new();
            gen_seq(&self.seq, rng, &mut out);
            out
        }
    }

    fn gen_seq(seq: &[Rep], rng: &mut TestRng, out: &mut String) {
        for (node, min, max) in seq {
            let reps = *min as u64 + rng.below((*max - *min) as u64 + 1);
            for _ in 0..reps {
                match node {
                    Node::Class(chars) => {
                        out.push(chars[rng.below(chars.len() as u64) as usize]);
                    }
                    Node::Group(inner) => gen_seq(inner, rng, out),
                }
            }
        }
    }

    /// Parses a sequence until end of input or an unmatched `)`.
    fn parse_seq(chars: &[char], mut i: usize, pattern: &str) -> Result<(Vec<Rep>, usize), Error> {
        let mut seq = Vec::new();
        while i < chars.len() && chars[i] != ')' {
            let node = match chars[i] {
                '[' => {
                    let (class, next) = parse_class(chars, i + 1, pattern)?;
                    i = next;
                    Node::Class(class)
                }
                '(' => {
                    let (inner, next) = parse_seq(chars, i + 1, pattern)?;
                    if next >= chars.len() || chars[next] != ')' {
                        return Err(Error(format!("unclosed group in {pattern:?}")));
                    }
                    i = next + 1;
                    Node::Group(inner)
                }
                '\\' => {
                    if i + 1 >= chars.len() {
                        return Err(Error(format!("dangling escape in {pattern:?}")));
                    }
                    i += 2;
                    Node::Class(vec![chars[i - 1]])
                }
                '|' | '*' | '+' | '?' | '{' | '}' | ']' | '^' | '$' | '.' => {
                    return Err(Error(format!(
                        "unsupported metachar {:?} in {pattern:?}",
                        chars[i]
                    )));
                }
                c => {
                    i += 1;
                    Node::Class(vec![c])
                }
            };
            let (min, max, next) = parse_quantifier(chars, i, pattern)?;
            i = next;
            seq.push((node, min, max));
        }
        Ok((seq, i))
    }

    /// Parses `[...]` (no negation support); `i` points past the `[`.
    fn parse_class(
        chars: &[char],
        mut i: usize,
        pattern: &str,
    ) -> Result<(Vec<char>, usize), Error> {
        let mut class = Vec::new();
        while i < chars.len() && chars[i] != ']' {
            let c = if chars[i] == '\\' {
                i += 1;
                *chars
                    .get(i)
                    .ok_or_else(|| Error(format!("dangling escape in {pattern:?}")))?
            } else {
                chars[i]
            };
            // `a-z` range (a literal `-` at the end of the class is a char).
            if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                let end = chars[i + 2];
                if (c as u32) > (end as u32) {
                    return Err(Error(format!("inverted class range in {pattern:?}")));
                }
                for code in (c as u32)..=(end as u32) {
                    class.push(char::from_u32(code).unwrap());
                }
                i += 3;
            } else {
                class.push(c);
                i += 1;
            }
        }
        if i >= chars.len() {
            return Err(Error(format!("unclosed class in {pattern:?}")));
        }
        if class.is_empty() {
            return Err(Error(format!("empty class in {pattern:?}")));
        }
        Ok((class, i + 1))
    }

    /// Unbounded quantifiers are capped here: `*` and `+` generate at most 8.
    const UNBOUNDED_CAP: u32 = 8;

    /// Parses an optional quantifier after an atom ending at `i`.
    fn parse_quantifier(
        chars: &[char],
        i: usize,
        pattern: &str,
    ) -> Result<(u32, u32, usize), Error> {
        match chars.get(i) {
            Some('?') => Ok((0, 1, i + 1)),
            Some('*') => Ok((0, UNBOUNDED_CAP, i + 1)),
            Some('+') => Ok((1, UNBOUNDED_CAP, i + 1)),
            Some('{') => {
                let close = (i..chars.len())
                    .find(|&j| chars[j] == '}')
                    .ok_or_else(|| Error(format!("unclosed quantifier in {pattern:?}")))?;
                let body: String = chars[i + 1..close].iter().collect();
                let (min, max) = match body.split_once(',') {
                    Some((lo, hi)) => (
                        lo.trim().parse().map_err(|_| bad_quant(pattern))?,
                        hi.trim().parse().map_err(|_| bad_quant(pattern))?,
                    ),
                    None => {
                        let n: u32 = body.trim().parse().map_err(|_| bad_quant(pattern))?;
                        (n, n)
                    }
                };
                if min > max {
                    return Err(bad_quant(pattern));
                }
                Ok((min, max, close + 1))
            }
            _ => Ok((1, 1, i)),
        }
    }

    fn bad_quant(pattern: &str) -> Error {
        Error(format!("bad quantifier in {pattern:?}"))
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Asserts a condition inside a property; panics (no shrinking) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Weighted (or unweighted) choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new_weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat)),)+
        ])
    };
}

/// Declares property tests. Supports the
/// `#![proptest_config(ProptestConfig::with_cases(n))]` inner attribute
/// and `name in strategy` bindings; each test runs `cases` deterministic
/// cases (the panic message of a failing assertion identifies the case
/// via the values bound in scope — bind and print them as needed).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = (<$crate::test_runner::Config as Default>::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(concat!(
                    module_path!(), "::", stringify!($name)
                ));
                // Build each strategy once; generate per case.
                $(let __strategy_of = &($strat);
                  let $arg = __strategy_of; )+
                for __case in 0..config.cases {
                    $(let $arg = $crate::strategy::Strategy::generate($arg, &mut rng);)+
                    $body
                }
            }
        )*
    };
}
