//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides exactly the subset of the rand 0.8 API the workspace
//! uses: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the
//! [`Rng`] extension methods `gen_range` / `gen_bool`. The generator is
//! SplitMix64 — statistically fine for synthetic test corpora, not
//! cryptographic, and deliberately deterministic for a given seed so
//! datasets are reproducible across runs and platforms.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Extension methods for random value generation (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of range");
        // 53 high-quality bits -> uniform f64 in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<G: RngCore> Rng for G {}

/// Ranges that can be sampled from (subset of `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Samples one value from the range.
    fn sample_single<G: RngCore>(self, rng: &mut G) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<G: RngCore>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty gen_range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<G: RngCore>(self, rng: &mut G) -> f64 {
        let unit = ((rng.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

pub mod rngs {
    //! Concrete generators (subset of `rand::rngs`).

    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 under the hood.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood) — passes BigCrush, one u64
            // of state, and trivially seedable; plenty for data generation.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0..1000usize), b.gen_range(0..1000usize));
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = rng.gen_range(5..=14);
            assert!((5..=14).contains(&v));
            let u = rng.gen_range(0..3usize);
            assert!(u < 3);
            let f = rng.gen_range(0.25f64..0.5);
            assert!((0.25..0.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }
}
