//! Offline stand-in for `serde`.
//!
//! The workspace only uses `#[derive(Serialize, Deserialize)]` as a
//! forward-compatible annotation — nothing serialises through serde yet
//! (see `dogmatix_core::classify`). This shim keeps those derives
//! compiling without network access by providing marker traits and
//! matching derive macros. Swap in the real crates.io `serde` when the
//! build environment gains registry access; no call site changes needed.

pub use serde_derive::{Deserialize, Serialize};

/// Marker counterpart of `serde::Serialize`.
pub trait Serialize {}

/// Marker counterpart of `serde::Deserialize`.
pub trait Deserialize<'de> {}
