//! Offline stand-in for `serde_derive`.
//!
//! The vendored [`serde`](../serde) shim defines `Serialize` and
//! `Deserialize` as marker traits, so the derives only need to emit the
//! corresponding empty `impl` blocks. Types with generic parameters are
//! not supported — no current workspace type needs them.

use proc_macro::{TokenStream, TokenTree};

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl ::serde::Serialize for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match type_name(input) {
        Some(name) => format!("impl<'de> ::serde::Deserialize<'de> for {name} {{}}")
            .parse()
            .unwrap(),
        None => TokenStream::new(),
    }
}

/// Extracts the name of the derived `struct`/`enum`, or `None` for shapes
/// the shim does not handle (e.g. generics), in which case the derive is
/// a no-op rather than an error.
fn type_name(input: TokenStream) -> Option<String> {
    let mut tokens = input.into_iter();
    while let Some(tt) = tokens.next() {
        if matches!(&tt, TokenTree::Ident(i) if i.to_string() == "struct" || i.to_string() == "enum")
        {
            let name = match tokens.next()? {
                TokenTree::Ident(name) => name.to_string(),
                _ => return None,
            };
            // A `<` right after the name means generics: bail out.
            if let Some(TokenTree::Punct(p)) = tokens.next() {
                if p.as_char() == '<' {
                    return None;
                }
            }
            return Some(name);
        }
    }
    None
}
